"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor

__all__ = ["Conv2d"]


class Conv2d(Module):
    """Convolutional layer over NCHW inputs.

    The weight has shape ``(out_channels, in_channels, kernel, kernel)``;
    axis 0 is the *filter* axis along which FLightNN selects per-filter
    ``k`` values.

    Args:
        in_channels: Input channel count.
        out_channels: Number of filters.
        kernel_size: Square kernel side.
        stride: Spatial stride.
        padding: Zero padding on each side.
        bias: Whether to learn an additive per-filter bias.  The paper's
            networks put batch-norm after every convolution, so bias
            defaults to ``False``.
        rng: Seed or generator for Kaiming initialisation.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ConfigurationError(
                "Conv2d channel counts, kernel size and stride must be positive"
            )
        if padding < 0:
            raise ConfigurationError("Conv2d padding must be non-negative")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng=rng), name="conv.weight")
        self.bias = Parameter(init.zeros((out_channels,)), name="conv.bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def output_spatial(self, height: int, width: int) -> tuple[int, int]:
        """Spatial output size for an input of ``height`` x ``width``."""
        return (
            F.conv_output_size(height, self.kernel_size, self.stride, self.padding),
            F.conv_output_size(width, self.kernel_size, self.stride, self.padding),
        )

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, kernel={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}, bias={self.bias is not None})"
        )
