"""Module/Parameter abstractions: composable layers with parameter discovery.

Mirrors the (small) subset of ``torch.nn.Module`` the reproduction needs:
attribute-based registration of parameters and sub-modules, recursive
``parameters()`` iteration, train/eval mode, and a flat ``state_dict``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A :class:`Tensor` registered as a trainable leaf (requires grad)."""

    def __init__(self, data, name: str | None = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for layers and models.

    Assigning a :class:`Parameter`, :class:`Module` or :class:`ModuleList` to
    an attribute registers it; discovery is recursive.
    """

    def __init__(self) -> None:
        self.training: bool = True

    # -- forward ---------------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:
        """Compute the layer output; subclasses must override."""
        raise NotImplementedError(f"{type(self).__name__} does not implement forward()")

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    # -- registration / discovery ----------------------------------------------

    def named_children(self) -> Iterator[tuple[str, "Module"]]:
        """Yield direct sub-modules with their attribute names."""
        for attr, value in vars(self).items():
            if isinstance(value, Module):
                yield attr, value
            elif isinstance(value, ModuleList):
                for i, child in enumerate(value):
                    yield f"{attr}.{i}", child

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield (dotted-name, parameter) pairs recursively."""
        for attr, value in vars(self).items():
            if isinstance(value, Parameter):
                yield f"{prefix}{attr}", value
        for name, child in self.named_children():
            yield from child.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        """Return all trainable parameters of this module tree."""
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants (pre-order)."""
        yield self
        for _, child in self.named_children():
            yield from child.modules()

    # -- modes / gradients -------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects batch-norm statistics)."""
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of every parameter."""
        for p in self.parameters():
            p.zero_grad()

    # -- (de)serialization --------------------------------------------------------

    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a flat name->array snapshot of all parameters and buffers."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = buf.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load a snapshot produced by :meth:`state_dict` (strict matching)."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in params:
                target = params[name].data
            elif name in buffers:
                target = buffers[name]
            else:
                raise ConfigurationError(f"unknown entry {name!r} in state dict")
            if target.shape != np.asarray(value).shape:
                raise ConfigurationError(
                    f"shape mismatch for {name!r}: model {target.shape}, state {np.asarray(value).shape}"
                )
            target[...] = value
            if name in params:
                params[name].bump_version()
        missing = (set(params) | set(buffers)) - set(state)
        if missing:
            raise ConfigurationError(f"state dict is missing entries: {sorted(missing)}")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield non-trainable persistent arrays (e.g. batch-norm running stats)."""
        for attr in getattr(self, "_buffers", ()):  # registered by register_buffer
            yield f"{prefix}{attr}", getattr(self, attr)
        for name, child in self.named_children():
            yield from child.named_buffers(prefix=f"{prefix}{name}.")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Attach a persistent non-trainable array under ``name``."""
        if not hasattr(self, "_buffers"):
            self._buffers: list[str] = []
        setattr(self, name, np.asarray(value, dtype=np.float64))
        self._buffers.append(name)

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())


class ModuleList(list):
    """A list of modules whose entries are registered for discovery."""

    def __init__(self, modules=()) -> None:
        modules = list(modules)
        for m in modules:
            if not isinstance(m, Module):
                raise ConfigurationError(f"ModuleList entries must be Modules, got {type(m).__name__}")
        super().__init__(modules)

    def append(self, module: Module) -> None:
        if not isinstance(module, Module):
            raise ConfigurationError(f"ModuleList entries must be Modules, got {type(module).__name__}")
        super().append(module)
