"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate for the whole reproduction: a
define-by-run autograd :class:`Tensor` in the spirit of PyTorch, implemented
on plain :mod:`numpy`.  Every differentiable operation builds a node in an
implicit DAG; :meth:`Tensor.backward` topologically sorts the graph and
accumulates gradients into ``.grad`` buffers.

Only the operations required by the FLightNN reproduction are provided, but
they are provided *correctly*: every op handles broadcasting, and the test
suite checks each against numerical differentiation (see
:mod:`repro.nn.gradcheck`).

Example:
    >>> import numpy as np
    >>> from repro.nn.tensor import Tensor
    >>> x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad
    array([2., 4.])
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GradientError, ShapeError

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

ArrayLike = "np.ndarray | float | int | Sequence"

_GRAD_ENABLED = [True]


def is_grad_enabled() -> bool:
    """Return whether new operations will record gradient information."""
    return _GRAD_ENABLED[-1]


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    _GRAD_ENABLED.append(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.pop()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, inverting numpy broadcasting rules."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value: "Tensor | ArrayLike", dtype=np.float64) -> "Tensor":
    """Coerce ``value`` to a :class:`Tensor` (no-op when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=dtype))


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Args:
        data: Array contents (copied only if not already a float ndarray).
        requires_grad: Whether gradients should be accumulated for this leaf.
        name: Optional debug label shown in ``repr``.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents", "_version")

    def __init__(
        self,
        data: "ArrayLike",
        requires_grad: bool = False,
        name: str | None = None,
    ) -> None:
        arr = np.asarray(data)
        if arr.dtype.kind not in "fiu":
            raise ShapeError(f"Tensor data must be numeric, got dtype {arr.dtype}")
        if arr.dtype.kind in "iu":
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self.name = name
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._version: int = 0

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build the result tensor of an operation.

        ``backward`` receives the upstream gradient and must call
        :meth:`accumulate_grad` on each parent that requires grad.  When grad
        mode is off or no parent requires grad, a detached tensor is returned.
        """
        parents = tuple(parents)
        out = Tensor(data)
        if is_grad_enabled() and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = parents
            out._backward = backward
        return out

    def accumulate_grad(self, grad: np.ndarray, own: bool = False) -> None:
        """Add ``grad`` into this tensor's gradient buffer (broadcast-aware).

        Args:
            grad: Gradient contribution (broadcast against this tensor).
            own: The caller guarantees it will not read ``grad`` again, so a
                first accumulation may keep the array instead of copying it.
                The training fast path hands over step-scoped scratch this
                way; the values are identical either way, so bitwise parity
                with the copying path is trivial.
        """
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad if own else grad.copy()
        else:
            self.grad += grad

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        """Shape of the underlying array."""
        return self.data.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions of the underlying array."""
        return self.data.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.data.size

    @property
    def dtype(self):
        """Data type of the underlying array."""
        return self.data.dtype

    @property
    def version(self) -> int:
        """Mutation counter for cache invalidation.

        Every code path in this repo that rewrites ``.data`` in place
        (optimizer steps, ``load_state_dict``, proximal shrinkage) calls
        :meth:`bump_version`, so caches keyed on ``version`` (e.g. quantized
        weights in :mod:`repro.infer`) know when to re-derive.  Code that
        mutates ``.data`` directly must call :meth:`bump_version` itself.
        """
        return self._version

    def bump_version(self) -> None:
        """Mark the tensor's data as mutated (invalidates version-keyed caches)."""
        self._version += 1

    def item(self) -> float:
        """Return the single element of a scalar tensor as a Python float."""
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to ``None``."""
        self.grad = None

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad}{label})"

    def __len__(self) -> int:
        return len(self.data)

    # -- backward --------------------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Args:
            grad: Upstream gradient.  Defaults to 1 for scalar outputs.

        Raises:
            GradientError: If called on a tensor that does not require grad,
                or on a non-scalar tensor without an explicit ``grad``.
        """
        if not self.requires_grad:
            raise GradientError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise GradientError(
                    f"backward() on non-scalar tensor of shape {self.shape} requires an explicit gradient"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ShapeError(f"gradient shape {grad.shape} does not match tensor shape {self.shape}")

        order = self._topological_order()
        self.accumulate_grad(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _topological_order(self) -> list["Tensor"]:
        """Return graph nodes reachable from ``self`` in topological order."""
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(g)
            if other.requires_grad:
                other.accumulate_grad(g)

        return Tensor.from_op(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(-g)

        return Tensor.from_op(-self.data, (self,), backward)

    def __sub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(g)
            if other.requires_grad:
                other.accumulate_grad(-g)

        return Tensor.from_op(self.data - other.data, (self, other), backward)

    def __rsub__(self, other: "Tensor | ArrayLike") -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(g * other.data)
            if other.requires_grad:
                other.accumulate_grad(g * self.data)

        return Tensor.from_op(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = as_tensor(other)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(g / other.data)
            if other.requires_grad:
                other.accumulate_grad(-g * self.data / (other.data**2))

        return Tensor.from_op(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other: "Tensor | ArrayLike") -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise ShapeError("Tensor.__pow__ supports scalar exponents only")

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * exponent * self.data ** (exponent - 1))

        return Tensor.from_op(self.data**exponent, (self,), backward)

    def __matmul__(self, other: "Tensor | ArrayLike") -> "Tensor":
        other = as_tensor(other)
        if self.ndim != 2 or other.ndim != 2:
            raise ShapeError(
                f"matmul requires 2-D tensors, got {self.shape} @ {other.shape}"
            )

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate_grad(g @ other.data.T)
            if other.requires_grad:
                other.accumulate_grad(self.data.T @ g)

        return Tensor.from_op(self.data @ other.data, (self, other), backward)

    # -- elementwise functions ---------------------------------------------------

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        """Elementwise natural logarithm."""

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g / self.data)

        return Tensor.from_op(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        out_data = np.sqrt(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * 0.5 / out_data)

        return Tensor.from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        """Elementwise absolute value (subgradient 0 at zero)."""

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * np.sign(self.data))

        return Tensor.from_op(np.abs(self.data), (self,), backward)

    def sigmoid(self) -> "Tensor":
        """Elementwise logistic sigmoid (numerically stable)."""
        out_data = _stable_sigmoid(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * out_data * (1.0 - out_data))

        return Tensor.from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        """Elementwise hyperbolic tangent."""
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g * (1.0 - out_data**2))

        return Tensor.from_op(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values to ``[low, high]``; gradient flows inside the range."""

        def backward(g: np.ndarray) -> None:
            inside = (self.data >= low) & (self.data <= high)
            self.accumulate_grad(g * inside)

        return Tensor.from_op(np.clip(self.data, low, high), (self,), backward)

    # -- reductions -------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all axes when ``None``)."""
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            if not keepdims and axis is not None:
                grad = np.expand_dims(grad, axis)
            self.accumulate_grad(np.broadcast_to(grad, self.data.shape))

        return Tensor.from_op(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Arithmetic mean over ``axis`` (all axes when ``None``)."""
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; ties split gradient equally."""
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            grad = g
            full = out_data
            if not keepdims and axis is not None:
                grad = np.expand_dims(grad, axis)
                full = np.expand_dims(full, axis)
            mask = (self.data == full).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self.accumulate_grad(mask * grad)

        return Tensor.from_op(out_data, (self,), backward)

    # -- shape manipulation -------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        """Return a reshaped view of this tensor."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g.reshape(self.data.shape))

        return Tensor.from_op(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        """Permute dimensions (reverse order when no axes are given)."""
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        perm = axes if axes else tuple(reversed(range(self.ndim)))
        inverse = np.argsort(perm)

        def backward(g: np.ndarray) -> None:
            self.accumulate_grad(g.transpose(inverse))

        return Tensor.from_op(self.data.transpose(perm), (self,), backward)

    @property
    def T(self) -> "Tensor":
        """Transpose of a 2-D tensor."""
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, g)
            self.accumulate_grad(grad)

        return Tensor.from_op(self.data[index], (self,), backward)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid for arrays."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out
