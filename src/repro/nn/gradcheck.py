"""Numerical gradient checking for autograd operations.

Central-difference verification used throughout the test suite to certify
that every analytic backward pass in :mod:`repro.nn` and
:mod:`repro.quant` is correct.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[[], Tensor],
    wrt: Tensor,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar ``fn()`` w.r.t. ``wrt.data``.

    ``fn`` must recompute the scalar output from the current value of
    ``wrt.data``; this function perturbs entries in place and restores them.
    """
    grad = np.zeros_like(wrt.data)
    flat = wrt.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn().item()
        flat[i] = original - eps
        lower = fn().item()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    params: Sequence[Tensor],
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
) -> None:
    """Assert analytic gradients of scalar ``fn()`` match numerical ones.

    Args:
        fn: Zero-argument callable returning a scalar :class:`Tensor`; must
            rebuild the graph on every call.
        params: Leaf tensors (with ``requires_grad=True``) to check.

    Raises:
        AssertionError: When any analytic gradient deviates beyond tolerance.
    """
    for p in params:
        p.zero_grad()
    out = fn()
    out.backward()
    for idx, p in enumerate(params):
        assert p.grad is not None, f"param {idx} received no gradient"
        numeric = numerical_gradient(fn, p, eps=eps)
        np.testing.assert_allclose(
            p.grad,
            numeric,
            rtol=rtol,
            atol=atol,
            err_msg=f"analytic vs numerical gradient mismatch for param {idx}",
        )
