"""Pure-numpy neural-network substrate (autograd, layers, optimizers).

This package replaces the paper's PyTorch dependency: it provides everything
needed to run Algorithm 1 (quantization-aware training with trainable
thresholds) on CPU with numpy only.
"""

from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn import functional
from repro.nn import init
from repro.nn import layers
from repro.nn import optim

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "Module",
    "ModuleList",
    "Parameter",
    "functional",
    "init",
    "layers",
    "optim",
]
