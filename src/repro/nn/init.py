"""Weight initialisation schemes.

Kaiming (He) initialisation is the default for all convolutional and linear
layers, matching common practice for Leaky-ReLU networks like the paper's
VGG/ResNet configurations.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.rng import as_generator

__all__ = ["kaiming_normal", "kaiming_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a linear or convolutional weight shape."""
    if len(shape) == 2:  # (out_features, in_features)
        return shape[1], shape[0]
    if len(shape) == 4:  # (filters, channels, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ConfigurationError(f"cannot infer fan for weight shape {shape}")


def kaiming_normal(
    shape: tuple[int, ...],
    rng: int | np.random.Generator | None = None,
    negative_slope: float = 0.01,
) -> np.ndarray:
    """He-normal init with gain adjusted for Leaky ReLU."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope**2))
    std = gain / math.sqrt(fan_in)
    return as_generator(rng).normal(0.0, std, size=shape)


def kaiming_uniform(
    shape: tuple[int, ...],
    rng: int | np.random.Generator | None = None,
    negative_slope: float = 0.01,
) -> np.ndarray:
    """He-uniform init with gain adjusted for Leaky ReLU."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return as_generator(rng).uniform(-bound, bound, size=shape)


def xavier_uniform(
    shape: tuple[int, ...],
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Glorot-uniform initialisation."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return as_generator(rng).uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero array (bias default)."""
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    """All-one array (batch-norm scale default)."""
    return np.ones(shape)
