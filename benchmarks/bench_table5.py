"""Benchmark: reproduce Table 5 (ImageNet top-5 accuracy & throughput).

Like the paper, network 8 (reduced-width ResNet-10) is trained only for
the shift families (L-2, L-1, FL_a, FL_b) and reports top-5 accuracy;
speedups are relative to LightNN-2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_table5


@pytest.mark.benchmark(group="tables")
def test_table5_imagenet(benchmark, profile):
    table = run_once(benchmark, run_table5, profile)
    report()
    report(table.render())

    rows = {r.scheme_key: r for r in table.network_rows(8)}
    assert set(rows) == {"L-2", "L-1", "FL_a", "FL_b"}
    # Speedups are relative to L-2 (the paper's 1x row for this table);
    # L-1 lands near 2x (paper: 1.95x).
    speedup_l1 = rows["L-1"].throughput / rows["L-2"].throughput
    assert 1.5 <= speedup_l1 <= 3.0
    # FL sits between L-2 and L-1 in both k and throughput.
    assert rows["L-2"].throughput <= rows["FL_b"].throughput + 1e-9
    assert rows["FL_a"].throughput <= rows["L-1"].throughput * 1.001
    assert rows["FL_a"].storage_mb <= rows["L-2"].storage_mb
    # Top-5 is the reported metric and must beat top-1.
    for row in rows.values():
        assert row.top5 >= row.accuracy
