"""Benchmark: reproduce Table 4 (CIFAR-100 accuracy & FPGA throughput)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_table4


@pytest.mark.benchmark(group="tables")
def test_table4_cifar100(benchmark, profile):
    table = run_once(benchmark, run_table4, profile)
    report()
    report(table.render())

    for network_id in (6, 7):
        rows = {r.scheme_key: r for r in table.network_rows(network_id)}
        assert rows["L-2"].storage_mb == pytest.approx(2 * rows["L-1"].storage_mb)
        assert rows["L-1"].throughput > rows["FP"].throughput
        # Paper: FLightNNs reach up to 1.8x speedup over fixed point on
        # CIFAR-100; at minimum FL_a must clearly beat FP.
        assert rows["FL_a"].throughput > 1.2 * rows["FP"].throughput
        assert 1.0 <= rows["FL_b"].mean_filter_k <= 2.0
