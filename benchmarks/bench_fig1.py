"""Benchmark: reproduce Fig. 1 — the LightNN Pareto gap FLightNNs fill.

Prints (energy, test-error) for L-1/L-2 and the two FLightNN points of
network 1 and asserts the motivating geometry: L-1 and L-2 are separated
in energy, and at least one FLightNN lands strictly inside the gap or on
its cheap edge.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_fig1


@pytest.mark.benchmark(group="figures")
def test_fig1_pareto_gap(benchmark, profile):
    points = run_once(benchmark, run_fig1, profile)
    report()
    report("Fig 1 (network 1): energy (uJ) vs test error (%)")
    for label in ("L-1", "FL_a", "FL_b", "L-2"):
        energy, error = points[label]
        report(f"  {label:5s}  {energy:8.4f}  {error:5.1f}")

    e_l1, _ = points["L-1"]
    e_l2, _ = points["L-2"]
    assert e_l2 > 1.5 * e_l1  # the discrete gap of Fig. 1
    for key in ("FL_a", "FL_b"):
        energy, _ = points[key]
        assert e_l1 - 1e-9 <= energy <= e_l2 + 1e-9  # FL fills the gap
