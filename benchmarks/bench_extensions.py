"""Extension benchmarks beyond the paper's tables.

* **Related-work baselines** (paper Sec. 2): BinaryConnect (1-bit) and
  DoReFa (4-bit uniform) trained on the same task as LightNN-1 and
  FLightNN.  The paper's framing — binary models trade much more accuracy
  for their storage advantage, while shift models keep fixed-point-level
  accuracy at shift-level cost — is checked on the energy axis.
* **QAT vs PTQ**: the value of Algorithm 1's quantization-aware training
  over post-training quantization of a full-precision model.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.data import make_cifar10_like
from repro.hw import AsicEnergyModel, network_largest_layer_ops
from repro.models import build_network
from repro.quant import (
    paper_schemes,
    quantize_model,
    scheme_binaryconnect,
    scheme_dorefa,
    scheme_lightnn,
)
from repro.train import TrainConfig, Trainer

SCHEMES = paper_schemes()


def _train(scheme, split, epochs=8, rng=1):
    model = build_network(1, scheme, num_classes=split.num_classes,
                          image_size=split.image_shape[1], width_scale=0.25, rng=rng)
    config = TrainConfig(epochs=epochs, batch_size=64, lr=3e-3,
                         lambda_warmup_epochs=2, threshold_freeze_epoch=epochs - 3,
                         threshold_lr_scale=10.0)
    history = Trainer(model, config).fit(split)
    return model, history


@pytest.fixture(scope="module")
def split():
    return make_cifar10_like(size_scale=0.5, samples=512)


@pytest.mark.benchmark(group="extensions")
def test_related_work_baselines(benchmark, split):
    def study():
        rows = {}
        for scheme in (scheme_binaryconnect(), scheme_dorefa(4), scheme_lightnn(1)):
            model, history = _train(scheme, split)
            energy = AsicEnergyModel().layer_energy_uj(network_largest_layer_ops(model))
            rows[scheme.name] = {
                "accuracy": 100 * history.best_test_accuracy,
                "storage_mb": model.storage_mb(),
                "energy_uj": energy,
            }
        return rows

    rows = run_once(benchmark, study)
    report()
    for name, row in rows.items():
        report(f"  {name:10s} acc={row['accuracy']:5.1f}%  "
              f"storage={row['storage_mb'] * 1024:6.2f}KB  energy={row['energy_uj']:.4f}uJ")

    bc, df, l1 = rows["BC_1W8A"], rows["DF_4W8A"], rows["L-1_4W8A"]
    # Binary is the cheapest on every cost axis...
    assert bc["storage_mb"] < l1["storage_mb"]
    assert bc["energy_uj"] < l1["energy_uj"]
    # ...but LightNN-1 holds accuracy at least as well (the paper's point
    # that binary nets need over-parameterisation to keep up).
    assert l1["accuracy"] >= bc["accuracy"] - 3.0
    # DoReFa (uniform 4-bit, real multipliers) costs more energy than L-1.
    assert df["energy_uj"] > l1["energy_uj"]


@pytest.mark.benchmark(group="extensions")
def test_qat_vs_ptq(benchmark, split):
    def study():
        full_model, full_history = _train(SCHEMES["Full"], split)
        results = {"Full": 100 * full_history.best_test_accuracy}
        for key in ("L-2", "L-1"):
            ptq_model = quantize_model(full_model, SCHEMES[key], split.num_classes)
            evaluation = Trainer(ptq_model, TrainConfig(epochs=1)).evaluate(split.test)
            results[f"PTQ {key}"] = 100 * evaluation["accuracy"]
            _, qat_history = _train(SCHEMES[key], split)
            results[f"QAT {key}"] = 100 * qat_history.best_test_accuracy
        return results

    results = run_once(benchmark, study)
    report()
    for name, acc in results.items():
        report(f"  {name:10s} {acc:5.1f}%")

    # PTQ to two shifts is nearly free; PTQ to one shift loses real accuracy
    # and QAT recovers (most of) it — the reason Algorithm 1 exists.
    assert results["PTQ L-2"] >= results["Full"] - 10.0
    assert results["QAT L-1"] >= results["PTQ L-1"] - 3.0
