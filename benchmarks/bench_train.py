"""Benchmark: eager vs fast-path training throughput (BENCH_train.json).

Measures Algorithm-1 QAT steps/sec for the eager baseline and the training
fast path (quantizer workspace + buffer arena + prefetch) on the paper's
net-1 and net-4 configs, with a per-phase breakdown (data, forward,
backward, quantize, optimizer, proximal) from the trainer's
:class:`~repro.utils.profiler.PhaseProfiler`, and proves the fast path's
defining property: a 10-step training run is **bitwise identical** to the
eager baseline (weights, thresholds, optimizer moments, TrainHistory).

Methodology — different from ``bench_infer.py`` on purpose:

* Every timing sample runs in its **own subprocess**.  The fast path holds
  its arena buffers (hundreds of MB warm scratch) for the life of the
  process, which measurably perturbs the allocator behaviour of an eager
  run timed afterwards *in the same process* (~20% inflation observed on
  net-1).  In-process interleaving — fine for the engine benchmark — would
  therefore flatter the fast path here; subprocess isolation gives each
  variant the allocator state it would see in a real training run.
* Variants alternate across reps (eager, fast, fast, eager, ...) so slow
  drifts in machine load hit both sides evenly, and medians are reported.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # direct invocation support
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

SCHEME = "FL_a"
IMAGE_SIZE = 32
NUM_CLASSES = 10
TIMING = {
    # network id -> (batch, steps per epoch, timed epochs, reps per variant).
    # Batch sizes are chosen per net so one step does comparable arithmetic
    # on this host (net-1 is ~8x net-4's work per sample).  The ratio is
    # batch-sensitive — the arena/workspace savings grow with the working
    # set — so the sweep below also records smaller batches.
    1: {"batch": 256, "steps": 3, "epochs": 2, "reps": 3},
    4: {"batch": 512, "steps": 3, "epochs": 2, "reps": 3},
}
SWEEP_BATCHES = {1: (64, 128), 4: (64, 128, 256)}
PARITY_STEPS = 10  # 2 epochs x 5 batches, the acceptance-criterion run


def _dataset(n: int, image_size: int, seed: int = 0):
    from repro.data.dataset import ArrayDataset

    rng = np.random.default_rng(seed)
    images = rng.standard_normal((n, 3, image_size, image_size))
    labels = rng.integers(0, NUM_CLASSES, n)
    return ArrayDataset(images, labels, NUM_CLASSES)


def _trainer(network_id: int, fast: bool, batch: int, image_size: int, epochs: int):
    from repro.models.registry import build_network
    from repro.quant.schemes import paper_schemes
    from repro.train.trainer import TrainConfig, Trainer

    model = build_network(
        network_id,
        paper_schemes()[SCHEME],
        num_classes=NUM_CLASSES,
        image_size=image_size,
        width_scale=1.0,
        rng=0,
    )
    config = TrainConfig(epochs=epochs, batch_size=batch, fast_path=fast, seed=0)
    return Trainer(model, config)


# ---------------------------------------------------------------------------
# worker side: one measurement per process
# ---------------------------------------------------------------------------


def _worker_timing(network_id: int, fast: bool, batch: int, steps: int, epochs: int) -> dict:
    """Warm up one epoch, then time ``epochs`` epochs of raw training steps."""
    from repro.data.dataset import DataLoader
    from repro.data.prefetch import PrefetchLoader

    trainer = _trainer(network_id, fast, batch, IMAGE_SIZE, epochs=1 + epochs)
    dataset = _dataset(steps * batch, IMAGE_SIZE)

    def run_epoch() -> float:
        loader = DataLoader(dataset, batch, shuffle=True, rng=trainer._loader_rng)
        if fast:
            loader = PrefetchLoader(loader, depth=trainer.config.prefetch_batches)
        try:
            start = time.perf_counter()
            trainer._run_epoch(loader, 0)
            return (time.perf_counter() - start) / steps * 1000.0
        finally:
            if isinstance(loader, PrefetchLoader):
                loader.close()

    run_epoch()  # warmup: arena/workspace allocation, numpy caches
    trainer.profiler.reset()
    ms = [run_epoch() for _ in range(epochs)]
    total_steps = steps * epochs
    phases = {
        name: seconds / total_steps * 1000.0
        for name, seconds in sorted(trainer.profiler.totals.items())
    }
    return {
        "ms_per_step": statistics.median(ms),
        "epoch_ms_per_step": [round(v, 3) for v in ms],
        "phases_ms": phases,
    }


def _digest(parts: list[tuple[str, bytes]]) -> str:
    h = hashlib.sha256()
    for name, blob in sorted(parts):
        h.update(name.encode())
        h.update(blob)
    return h.hexdigest()


def _worker_parity(network_id: int, fast: bool) -> dict:
    """Run the acceptance-criterion 10-step fit and digest the full state."""
    from repro.data.dataset import DataSplit

    batch, image_size = 16, 16
    trainer = _trainer(network_id, fast, batch, image_size, epochs=2)
    split = DataSplit(
        train=_dataset(batch * (PARITY_STEPS // 2), image_size, seed=1),
        test=_dataset(2 * batch, image_size, seed=2),
    )
    history = trainer.fit(split)
    arrays, meta = trainer.training_state()

    def blob(name: str) -> bytes:
        arr = np.ascontiguousarray(arrays[name])
        return arr.dtype.str.encode() + repr(arr.shape).encode() + arr.tobytes()

    groups: dict[str, list[tuple[str, bytes]]] = {
        "weights": [],
        "thresholds": [],
        "optimizer_moments": [],
    }
    for name in arrays:
        if name.startswith("model/"):
            key = "thresholds" if "threshold" in name else "weights"
        else:
            key = "optimizer_moments"
        groups[key].append((name, blob(name)))
    digests = {key: _digest(parts) for key, parts in groups.items()}
    digests["history"] = hashlib.sha256(
        json.dumps(meta["history"], sort_keys=True).encode()
    ).hexdigest()
    digests["loader_rng"] = hashlib.sha256(
        json.dumps(meta["rng"], sort_keys=True, default=repr).encode()
    ).hexdigest()
    return {
        "digests": digests,
        "steps": trainer._step,
        "final_train_loss": history.final.train_loss,
    }


# ---------------------------------------------------------------------------
# orchestrator side
# ---------------------------------------------------------------------------


def _spawn(worker_args: list[str]) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, str(Path(__file__).resolve()), "--worker", *worker_args],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(REPO_ROOT),
        check=False,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"bench worker failed ({worker_args}):\n{proc.stdout}\n{proc.stderr}"
        )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _time_config(network_id: int, spec: dict, log) -> dict:
    results: dict[str, list[dict]] = {"eager": [], "fast": []}
    # eager, fast, fast, eager, ... — balanced against slow machine drift.
    order: list[str] = []
    for rep in range(spec["reps"]):
        pair = ["eager", "fast"] if rep % 2 == 0 else ["fast", "eager"]
        order.extend(pair)
    for variant in order:
        out = _worker_timing_sub(network_id, variant == "fast", spec)
        results[variant].append(out)
        log(f"  net-{network_id} {variant}: {out['ms_per_step']:.1f} ms/step")
    row: dict = {"network_id": network_id, **{k: spec[k] for k in ("batch", "steps", "epochs", "reps")}}
    for variant, outs in results.items():
        ms = statistics.median([o["ms_per_step"] for o in outs])
        phase_keys = sorted({k for o in outs for k in o["phases_ms"]})
        phases = {
            k: round(statistics.median([o["phases_ms"].get(k, 0.0) for o in outs]), 3)
            for k in phase_keys
        }
        row[variant] = {
            "ms_per_step": round(ms, 3),
            "steps_per_sec": round(1000.0 / ms, 3),
            "samples": [round(o["ms_per_step"], 1) for o in outs],
            "phases_ms": phases,
        }
    row["speedup"] = round(row["eager"]["ms_per_step"] / row["fast"]["ms_per_step"], 3)
    return row


def _worker_timing_sub(network_id: int, fast: bool, spec: dict) -> dict:
    return _spawn(
        [
            "timing",
            "--net", str(network_id),
            "--variant", "fast" if fast else "eager",
            "--batch", str(spec["batch"]),
            "--steps", str(spec["steps"]),
            "--epochs", str(spec["epochs"]),
        ]
    )


def _parity_row(network_id: int) -> dict:
    eager = _spawn(["parity", "--net", str(network_id), "--variant", "eager"])
    fast = _spawn(["parity", "--net", str(network_id), "--variant", "fast"])
    matches = {
        key: eager["digests"][key] == fast["digests"][key] for key in eager["digests"]
    }
    return {
        "network_id": network_id,
        "steps": eager["steps"],
        "bitwise_identical": all(matches.values()),
        "matches": matches,
        "digests": eager["digests"],
        "final_train_loss": eager["final_train_loss"],
    }


def run_benchmark(smoke: bool = False, log=print) -> dict:
    """Run the full benchmark; returns the BENCH_train.json payload."""
    timing = {}
    for net, spec in TIMING.items():
        spec = dict(spec)
        if smoke:
            spec.update(batch=32, steps=2, epochs=1, reps=1)
        timing[net] = spec
    rows = [_time_config(net, spec, log) for net, spec in timing.items()]
    sweep = []
    if not smoke:
        for net, batches in SWEEP_BATCHES.items():
            for batch in batches:
                spec = {"batch": batch, "steps": 4, "epochs": 1, "reps": 1}
                sweep.append(_time_config(net, spec, log))
    parity = [_parity_row(net) for net in timing]
    for row in parity:
        if not row["bitwise_identical"]:
            raise AssertionError(
                f"fast path diverged from eager on net-{row['network_id']}: "
                f"{row['matches']}"
            )
        log(f"  net-{row['network_id']} parity: {row['steps']} steps bitwise identical")
    return {
        "meta": {
            "benchmark": "training fast path (quant workspace + arena + prefetch)",
            "scheme": SCHEME,
            "image_size": IMAGE_SIZE,
            "width_scale": 1.0,
            "smoke": smoke,
            "methodology": (
                "each sample in its own subprocess (a warm arena perturbs the "
                "allocator for later in-process eager runs); variants alternate "
                "across reps; medians reported; batch per net sized for "
                "comparable per-step work, with smaller batches in batch_sweep"
            ),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "timing": rows,
        "batch_sweep": sweep,
        "parity": parity,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--worker", choices=["timing", "parity"], default=None)
    parser.add_argument("--net", type=int, default=4)
    parser.add_argument("--variant", choices=["eager", "fast"], default="eager")
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--steps", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=1)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_train.json"
    )
    args = parser.parse_args(argv)
    if args.worker == "timing":
        out = _worker_timing(
            args.net, args.variant == "fast", args.batch, args.steps, args.epochs
        )
        print(json.dumps(out))
        return
    if args.worker == "parity":
        print(json.dumps(_worker_parity(args.net, args.variant == "fast")))
        return
    result = run_benchmark(smoke=args.smoke)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["timing"]:
        print(
            f"net-{row['network_id']}: eager {row['eager']['ms_per_step']} ms/step, "
            f"fast {row['fast']['ms_per_step']} ms/step -> {row['speedup']}x"
        )
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
