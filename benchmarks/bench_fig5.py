"""Benchmark: reproduce Fig. 5 — accuracy vs ASIC computational energy.

One panel per Table-1 network (reusing the Table 2-5 trainings via the
shared cache).  Asserts the energy ordering that drives the figure and the
FLightNN interpolation property.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_fig5


@pytest.mark.benchmark(group="figures")
def test_fig5_accuracy_vs_energy(benchmark, profile):
    panels = run_once(benchmark, run_fig5, profile)
    report()
    assert len(panels) == 8  # one panel per Table-1 network
    for panel in panels:
        report(panel.render())
        rows = {r.scheme_key: r for r in panel.points}
        # Energy ordering: L-1 < FL_a <= FL_b-ish < L-2; FP above L-2
        # (fixed-point multiplies cost more than two shifts).
        assert rows["L-1"].energy_uj < rows["L-2"].energy_uj
        assert rows["L-1"].energy_uj <= rows["FL_a"].energy_uj <= rows["L-2"].energy_uj + 1e-12
        assert rows["FL_a"].energy_uj <= rows["FL_b"].energy_uj + 1e-12
        if "FP" in rows:
            assert rows["FP"].energy_uj > rows["L-2"].energy_uj
        # L-2 costs twice L-1 (two shifts + two adds vs one of each).
        assert rows["L-2"].energy_uj == pytest.approx(2 * rows["L-1"].energy_uj, rel=0.05)
