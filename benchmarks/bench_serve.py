"""Benchmark: serving throughput/latency under load (BENCH_serve.json).

Measures the `repro.serve` stack — dynamic micro-batcher + HTTP front end —
over the compiled engine on the Table-1 config-4 network, sweeping:

* **offered load** — closed-loop concurrent clients (each fires its next
  request the moment the previous one answers);
* **batcher settings** — micro-batching ON (``max_batch_size=32`` with a
  2 ms coalescing window) vs OFF (``max_batch_size=1``: every request
  executes alone, the batch-size-1 serving baseline);
* **transport** — in-process ``MicroBatcher.submit`` (isolates the serving
  core) and end-to-end HTTP over keep-alive connections (adds JSON + socket
  cost per request).

Two model scales are swept.  The primary "serving" scale (16x16 inputs,
half width — the latency-critical small-model regime FLightNNs target, and
the scale the repo's whole test suite certifies) drives the headline
criterion: micro-batching ≥ 2x batch-size-1 sustained throughput, computed
from the in-process rows at the highest offered load where coalescing
actually engages.  The secondary full-width 32x32 scale is reported for
context at peak load; its single-image batches carry enough BLAS work that
the batching advantage narrows (and timing on a loaded 1-core host gets
noisy), which the metadata records honestly.

Reported per row: sustained throughput (requests/s over the wall-clock of
the whole closed loop) and client-observed p50/p95/p99 latency.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py

or the pytest smoke variant (marker ``serve_bench``)::

    PYTHONPATH=src python -m pytest tests/serve/test_bench_smoke.py -m serve_bench
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # `python benchmarks/bench_serve.py` from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.infer import InferenceEngine
from repro.models.registry import build_network
from repro.nn.layers.norm import BatchNorm2d
from repro.quant.schemes import paper_schemes
from repro.serve import (
    BatcherConfig,
    MicroBatcher,
    ModelRegistry,
    ModelServer,
    PredictClient,
    ServerConfig,
    percentile,
)

NETWORK_ID = 4
SCHEME = "FL_a"
NUM_CLASSES = 10
CLIENT_LOADS = (2, 8, 32)
ON = BatcherConfig(max_batch_size=32, max_wait_s=0.002, queue_depth=4096)
OFF = BatcherConfig(max_batch_size=1, queue_depth=4096)

# The criterion scale vs the context scale (see module docstring).
PRIMARY_SCALE = {"name": "serving_16px", "image_size": 16, "width_scale": 0.5}
CONTEXT_SCALE = {"name": "full_32px", "image_size": 32, "width_scale": 1.0}


def _build(image_size: int, width_scale: float, seed: int = 0):
    """Config-4 network at the requested scale, with non-trivial BN state so
    conv+BN folding is exercised as after real training."""
    model = build_network(
        NETWORK_ID,
        paper_schemes()[SCHEME],
        num_classes=NUM_CLASSES,
        image_size=image_size,
        width_scale=width_scale,
        rng=seed,
    )
    rng = np.random.default_rng(seed + 1)
    for m in model.modules():
        if isinstance(m, BatchNorm2d):
            c = m.num_features
            m.gamma.data[...] = rng.uniform(0.5, 1.5, c)
            m.beta.data[...] = rng.normal(0.0, 0.2, c)
            m.running_mean[...] = rng.normal(0.0, 0.5, c)
            m.running_var[...] = rng.uniform(0.5, 2.0, c)
    model.eval()
    return model


def _images(n: int, image_size: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (n, 3, image_size, image_size))


def _closed_loop(fire, clients: int, requests_per_client: int):
    """Run ``fire(image_index)`` from ``clients`` closed-loop threads.

    Returns (wall_s, sorted per-request latencies).  The wall clock spans
    first request to last response across all clients, so ``total/wall`` is
    *sustained* throughput including every coalescing wait.
    """
    latencies: "list[list[float]]" = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        barrier.wait()
        for j in range(requests_per_client):
            t0 = time.perf_counter()
            fire(cid * requests_per_client + j)
            latencies[cid].append(time.perf_counter() - t0)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, sorted(lat for per_client in latencies for lat in per_client)


def _row(scale: str, transport: str, clients: int, micro: bool, wall: float,
         lats: "list[float]", mean_batch: float) -> dict:
    total = len(lats)
    return {
        "scale": scale,
        "transport": transport,
        "clients": clients,
        "micro_batching": micro,
        "requests": total,
        "wall_s": wall,
        "throughput_rps": total / wall,
        "mean_batch_size": mean_batch,
        "latency_s": {
            "mean": sum(lats) / total,
            "p50": percentile(lats, 50),
            "p95": percentile(lats, 95),
            "p99": percentile(lats, 99),
        },
    }


def _bench_batcher(scale: str, engine: InferenceEngine, images: np.ndarray, clients: int,
                   requests_per_client: int, micro: bool) -> dict:
    with MicroBatcher(engine, ON if micro else OFF) as batcher:
        n = len(images)
        batcher.submit(images[0]).result()  # warm scratch buffers

        def fire(i: int) -> None:
            batcher.submit(images[i % n]).result()

        wall, lats = _closed_loop(fire, clients, requests_per_client)
        mean_batch = batcher.metrics.batch_size_mean.value
    return _row(scale, "batcher", clients, micro, wall, lats, mean_batch)


def _bench_http(scale: str, engine: InferenceEngine, images: np.ndarray, clients: int,
                requests_per_client: int, micro: bool) -> dict:
    registry = ModelRegistry(ON if micro else OFF)
    entry = registry.register("bench", engine=engine)
    with ModelServer(registry, ServerConfig(port=0, request_timeout_s=120.0)) as server:
        client = PredictClient(server.url, timeout_s=120.0)
        n = len(images)
        client.predict(images[0])  # warm

        def fire(i: int) -> None:
            client.predict(images[i % n])

        wall, lats = _closed_loop(fire, clients, requests_per_client)
        mean_batch = entry.metrics.batch_size_mean.value
    return _row(scale, "http", clients, micro, wall, lats, mean_batch)


def run_benchmark(requests_per_client: int = 24, smoke: bool = False) -> dict:
    """Run the serving benchmark; ``smoke=True`` shrinks it to seconds."""
    loads = (2, 8) if smoke else CLIENT_LOADS
    peak = max(loads)
    if smoke:
        requests_per_client = min(requests_per_client, 8)

    rows = []
    for scale, scale_loads, transports in (
        # Primary scale: full load sweep, both transports — drives the criterion.
        (PRIMARY_SCALE, loads, ("batcher", "http")),
        # Context scale: in-process rows at peak load only (skipped in smoke).
        (CONTEXT_SCALE, () if smoke else (peak,), ("batcher",)),
    ):
        if not scale_loads:
            continue
        model = _build(scale["image_size"], scale["width_scale"])
        engine = InferenceEngine(model)
        images = _images(64, scale["image_size"])
        engine.predict_logits(images[:8])  # compile + warm outside timing
        for clients in scale_loads:
            for micro in (False, True):
                if "batcher" in transports:
                    rows.append(_bench_batcher(
                        scale["name"], engine, images, clients, requests_per_client, micro))
                if "http" in transports:
                    rows.append(_bench_http(
                        scale["name"], engine, images, clients, requests_per_client, micro))

    def _tput(scale: str, transport: str, clients: int, micro: bool) -> "float | None":
        return next(
            (r["throughput_rps"] for r in rows
             if r["scale"] == scale and r["transport"] == transport
             and r["clients"] == clients and r["micro_batching"] == micro),
            None,
        )

    primary = PRIMARY_SCALE["name"]
    context_on = _tput(CONTEXT_SCALE["name"], "batcher", peak, True)
    context_off = _tput(CONTEXT_SCALE["name"], "batcher", peak, False)
    summary = {
        "criterion_scale": primary,
        "peak_clients": peak,
        "batcher_speedup_at_peak": (
            _tput(primary, "batcher", peak, True) / _tput(primary, "batcher", peak, False)
        ),
        "http_speedup_at_peak": (
            _tput(primary, "http", peak, True) / _tput(primary, "http", peak, False)
        ),
        "micro_batch_speedup": {
            f"clients_{c}": {
                "batcher": _tput(primary, "batcher", c, True) / _tput(primary, "batcher", c, False),
                "http": _tput(primary, "http", c, True) / _tput(primary, "http", c, False),
            }
            for c in loads
        },
    }
    if context_on is not None and context_off is not None:
        summary["context_full_width_batcher_speedup_at_peak"] = context_on / context_off
    return {
        "benchmark": "dynamic micro-batching server vs batch-size-1 serving",
        "metadata": {
            "network_id": NETWORK_ID,
            "scheme": SCHEME,
            "scales": {
                PRIMARY_SCALE["name"]: {
                    "image_shape": [3, PRIMARY_SCALE["image_size"], PRIMARY_SCALE["image_size"]],
                    "width_scale": PRIMARY_SCALE["width_scale"],
                    "role": "criterion: micro-batching >= 2x batch-size-1 throughput",
                },
                CONTEXT_SCALE["name"]: {
                    "image_shape": [3, CONTEXT_SCALE["image_size"], CONTEXT_SCALE["image_size"]],
                    "width_scale": CONTEXT_SCALE["width_scale"],
                    "role": (
                        "context only: large per-image BLAS work narrows the batching "
                        "advantage and is timing-noisy on a loaded 1-core host"
                    ),
                },
            },
            "requests_per_client": requests_per_client,
            "client_loads": list(loads),
            "batcher_on": {"max_batch_size": ON.max_batch_size, "max_wait_s": ON.max_wait_s},
            "batcher_off": {"max_batch_size": OFF.max_batch_size},
            "closed_loop": "each client fires its next request on response",
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "smoke": smoke,
        },
        "rows": rows,
        "summary": summary,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests-per-client", type=int, default=24)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    )
    args = parser.parse_args(argv)
    result = run_benchmark(requests_per_client=args.requests_per_client, smoke=args.smoke)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    summary = result["summary"]
    print(f"wrote {args.out}")
    for row in result["rows"]:
        lat = row["latency_s"]
        print(
            f"  {row['scale']:>12} {row['transport']:>7} clients={row['clients']:>2} "
            f"micro={'on ' if row['micro_batching'] else 'off'} "
            f"{row['throughput_rps']:8.1f} req/s  "
            f"p50={lat['p50'] * 1e3:6.2f}ms p99={lat['p99'] * 1e3:6.2f}ms "
            f"mean_batch={row['mean_batch_size']:.1f}"
        )
    print(
        f"  micro-batching speedup at {summary['peak_clients']} clients "
        f"({summary['criterion_scale']}): "
        f"{summary['batcher_speedup_at_peak']:.2f}x (batcher), "
        f"{summary['http_speedup_at_peak']:.2f}x (http)"
    )


if __name__ == "__main__":
    main()
