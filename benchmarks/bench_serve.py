"""Benchmark: serving throughput/latency under load (BENCH_serve.json).

Measures the `repro.serve` stack — dynamic micro-batcher + HTTP front end —
over the compiled engine on the Table-1 config-4 network, sweeping:

* **offered load** — closed-loop concurrent clients (each fires its next
  request the moment the previous one answers);
* **batcher settings** — micro-batching ON (``max_batch_size=32`` with a
  2 ms coalescing window) vs OFF (``max_batch_size=1``: every request
  executes alone, the batch-size-1 serving baseline);
* **transport** — in-process ``MicroBatcher.submit`` (isolates the serving
  core) and end-to-end HTTP over keep-alive connections (adds JSON + socket
  cost per request).

Two model scales are swept.  The primary "serving" scale (16x16 inputs,
half width — the latency-critical small-model regime FLightNNs target, and
the scale the repo's whole test suite certifies) drives the headline
criterion: micro-batching ≥ 2x batch-size-1 sustained throughput, computed
from the in-process rows at the highest offered load where coalescing
actually engages.  The secondary full-width 32x32 scale is reported for
context at peak load; its single-image batches carry enough BLAS work that
the batching advantage narrows (and timing on a loaded 1-core host gets
noisy), which the metadata records honestly.

Reported per row: sustained throughput (requests/s over the wall-clock of
the whole closed loop) and client-observed p50/p95/p99 latency.

A second mode, ``--cluster-sweep``, benchmarks the supervised
multi-process tier (:class:`~repro.serve.ClusterService`): worker-count
scaling 1/2/4 under the accelerator-offload service model
(``service_delay_s`` — see :data:`CLUSTER_SERVICE_DELAY_S`), per-priority
latency percentiles, and one deliberate overload point proving the
degradation ladder sheds and downshifts before the accepted-traffic p99
collapses.  Results merge into ``BENCH_serve.json`` as the
``cluster_sweep`` section; the acceptance criterion is >= 2.5x throughput
at 4 workers vs 1.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --cluster-sweep

or the pytest smoke variant (marker ``serve_bench``)::

    PYTHONPATH=src python -m pytest tests/serve/test_bench_smoke.py -m serve_bench
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # `python benchmarks/bench_serve.py` from the repo root
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.errors import QueueFullError, QuotaExceededError
from repro.infer import InferenceEngine
from repro.infer.plan import PlanConfig
from repro.models.registry import build_network
from repro.nn.layers.norm import BatchNorm2d
from repro.quant.schemes import paper_schemes
from repro.serve import (
    BatcherConfig,
    ClusterConfig,
    ClusterService,
    MicroBatcher,
    ModelRegistry,
    ModelServer,
    PredictClient,
    ServerConfig,
    percentile,
)

NETWORK_ID = 4
SCHEME = "FL_a"
NUM_CLASSES = 10
CLIENT_LOADS = (2, 8, 32)
ON = BatcherConfig(max_batch_size=32, max_wait_s=0.002, queue_depth=4096)
OFF = BatcherConfig(max_batch_size=1, queue_depth=4096)

# The criterion scale vs the context scale (see module docstring).
PRIMARY_SCALE = {"name": "serving_16px", "image_size": 16, "width_scale": 0.5}
CONTEXT_SCALE = {"name": "full_32px", "image_size": 32, "width_scale": 1.0}


def _build(image_size: int, width_scale: float, seed: int = 0):
    """Config-4 network at the requested scale, with non-trivial BN state so
    conv+BN folding is exercised as after real training."""
    model = build_network(
        NETWORK_ID,
        paper_schemes()[SCHEME],
        num_classes=NUM_CLASSES,
        image_size=image_size,
        width_scale=width_scale,
        rng=seed,
    )
    rng = np.random.default_rng(seed + 1)
    for m in model.modules():
        if isinstance(m, BatchNorm2d):
            c = m.num_features
            m.gamma.data[...] = rng.uniform(0.5, 1.5, c)
            m.beta.data[...] = rng.normal(0.0, 0.2, c)
            m.running_mean[...] = rng.normal(0.0, 0.5, c)
            m.running_var[...] = rng.uniform(0.5, 2.0, c)
    model.eval()
    return model


def _images(n: int, image_size: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, 1.0, (n, 3, image_size, image_size))


def _closed_loop(fire, clients: int, requests_per_client: int):
    """Run ``fire(image_index)`` from ``clients`` closed-loop threads.

    Returns (wall_s, sorted per-request latencies).  The wall clock spans
    first request to last response across all clients, so ``total/wall`` is
    *sustained* throughput including every coalescing wait.
    """
    latencies: "list[list[float]]" = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        barrier.wait()
        for j in range(requests_per_client):
            t0 = time.perf_counter()
            fire(cid * requests_per_client + j)
            latencies[cid].append(time.perf_counter() - t0)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, sorted(lat for per_client in latencies for lat in per_client)


def _row(scale: str, transport: str, clients: int, micro: bool, wall: float,
         lats: "list[float]", mean_batch: float) -> dict:
    total = len(lats)
    return {
        "scale": scale,
        "transport": transport,
        "clients": clients,
        "micro_batching": micro,
        "requests": total,
        "wall_s": wall,
        "throughput_rps": total / wall,
        "mean_batch_size": mean_batch,
        "latency_s": {
            "mean": sum(lats) / total,
            "p50": percentile(lats, 50),
            "p95": percentile(lats, 95),
            "p99": percentile(lats, 99),
        },
    }


def _bench_batcher(scale: str, engine: InferenceEngine, images: np.ndarray, clients: int,
                   requests_per_client: int, micro: bool) -> dict:
    with MicroBatcher(engine, ON if micro else OFF) as batcher:
        n = len(images)
        batcher.submit(images[0]).result()  # warm scratch buffers

        def fire(i: int) -> None:
            batcher.submit(images[i % n]).result()

        wall, lats = _closed_loop(fire, clients, requests_per_client)
        mean_batch = batcher.metrics.batch_size_mean.value
    return _row(scale, "batcher", clients, micro, wall, lats, mean_batch)


def _bench_http(scale: str, engine: InferenceEngine, images: np.ndarray, clients: int,
                requests_per_client: int, micro: bool) -> dict:
    registry = ModelRegistry(ON if micro else OFF)
    entry = registry.register("bench", engine=engine)
    with ModelServer(registry, ServerConfig(port=0, request_timeout_s=120.0)) as server:
        client = PredictClient(server.url, timeout_s=120.0)
        n = len(images)
        client.predict(images[0])  # warm

        def fire(i: int) -> None:
            client.predict(images[i % n])

        wall, lats = _closed_loop(fire, clients, requests_per_client)
        mean_batch = entry.metrics.batch_size_mean.value
    return _row(scale, "http", clients, micro, wall, lats, mean_batch)


def run_benchmark(requests_per_client: int = 24, smoke: bool = False) -> dict:
    """Run the serving benchmark; ``smoke=True`` shrinks it to seconds."""
    loads = (2, 8) if smoke else CLIENT_LOADS
    peak = max(loads)
    if smoke:
        requests_per_client = min(requests_per_client, 8)

    rows = []
    for scale, scale_loads, transports in (
        # Primary scale: full load sweep, both transports — drives the criterion.
        (PRIMARY_SCALE, loads, ("batcher", "http")),
        # Context scale: in-process rows at peak load only (skipped in smoke).
        (CONTEXT_SCALE, () if smoke else (peak,), ("batcher",)),
    ):
        if not scale_loads:
            continue
        model = _build(scale["image_size"], scale["width_scale"])
        engine = InferenceEngine(model)
        images = _images(64, scale["image_size"])
        engine.predict_logits(images[:8])  # compile + warm outside timing
        for clients in scale_loads:
            for micro in (False, True):
                if "batcher" in transports:
                    rows.append(_bench_batcher(
                        scale["name"], engine, images, clients, requests_per_client, micro))
                if "http" in transports:
                    rows.append(_bench_http(
                        scale["name"], engine, images, clients, requests_per_client, micro))

    def _tput(scale: str, transport: str, clients: int, micro: bool) -> "float | None":
        return next(
            (r["throughput_rps"] for r in rows
             if r["scale"] == scale and r["transport"] == transport
             and r["clients"] == clients and r["micro_batching"] == micro),
            None,
        )

    primary = PRIMARY_SCALE["name"]
    context_on = _tput(CONTEXT_SCALE["name"], "batcher", peak, True)
    context_off = _tput(CONTEXT_SCALE["name"], "batcher", peak, False)
    summary = {
        "criterion_scale": primary,
        "peak_clients": peak,
        "batcher_speedup_at_peak": (
            _tput(primary, "batcher", peak, True) / _tput(primary, "batcher", peak, False)
        ),
        "http_speedup_at_peak": (
            _tput(primary, "http", peak, True) / _tput(primary, "http", peak, False)
        ),
        "micro_batch_speedup": {
            f"clients_{c}": {
                "batcher": _tput(primary, "batcher", c, True) / _tput(primary, "batcher", c, False),
                "http": _tput(primary, "http", c, True) / _tput(primary, "http", c, False),
            }
            for c in loads
        },
    }
    if context_on is not None and context_off is not None:
        summary["context_full_width_batcher_speedup_at_peak"] = context_on / context_off
    return {
        "benchmark": "dynamic micro-batching server vs batch-size-1 serving",
        "metadata": {
            "network_id": NETWORK_ID,
            "scheme": SCHEME,
            "scales": {
                PRIMARY_SCALE["name"]: {
                    "image_shape": [3, PRIMARY_SCALE["image_size"], PRIMARY_SCALE["image_size"]],
                    "width_scale": PRIMARY_SCALE["width_scale"],
                    "role": "criterion: micro-batching >= 2x batch-size-1 throughput",
                },
                CONTEXT_SCALE["name"]: {
                    "image_shape": [3, CONTEXT_SCALE["image_size"], CONTEXT_SCALE["image_size"]],
                    "width_scale": CONTEXT_SCALE["width_scale"],
                    "role": (
                        "context only: large per-image BLAS work narrows the batching "
                        "advantage and is timing-noisy on a loaded 1-core host"
                    ),
                },
            },
            "requests_per_client": requests_per_client,
            "client_loads": list(loads),
            "batcher_on": {"max_batch_size": ON.max_batch_size, "max_wait_s": ON.max_wait_s},
            "batcher_off": {"max_batch_size": OFF.max_batch_size},
            "closed_loop": "each client fires its next request on response",
            "cpu_count": os.cpu_count(),
            "numpy": np.__version__,
            "smoke": smoke,
        },
        "rows": rows,
        "summary": summary,
    }


# -- cluster sweep (--cluster-sweep) ------------------------------------------

#: Worker-process counts swept for the scaling criterion.
CLUSTER_WORKER_COUNTS = (1, 2, 4)
#: Per-request accelerator-offload service time modeled inside each worker.
#: The benchmark host has a single CPU core, so compute-bound workers cannot
#: show process-level scaling; a deployed FLightNN worker spends its request
#: latency waiting on the accelerator (FPGA/ASIC) while the host core only
#: orchestrates — which is exactly what ``service_delay_s`` models.  The
#: metadata records this honestly.
CLUSTER_SERVICE_DELAY_S = 0.02


def _cluster_closed_loop(service, images, clients: int, requests_per_client: int):
    """Closed-loop load with alternating priority classes against a
    :class:`~repro.serve.ClusterService`.

    Returns ``(wall_s, {priority: sorted latencies}, {priority: shed})``.
    Shed requests (queue bound or ladder) count and the client moves on —
    a closed-loop client never retries, so sheds don't distort latencies.
    """
    lock = threading.Lock()
    lats = {"interactive": [], "batch": []}
    shed = {"interactive": 0, "batch": 0}
    n = len(images)
    barrier = threading.Barrier(clients + 1)

    def client(cid: int) -> None:
        priority = "interactive" if cid % 2 == 0 else "batch"
        barrier.wait()
        for j in range(requests_per_client):
            t0 = time.perf_counter()
            try:
                service.submit(images[(cid + j) % n], priority=priority).result(timeout=120)
            except (QueueFullError, QuotaExceededError):
                with lock:
                    shed[priority] += 1
                continue
            elapsed = time.perf_counter() - t0
            with lock:
                lats[priority].append(elapsed)

    threads = [threading.Thread(target=client, args=(c,)) for c in range(clients)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    return wall, {p: sorted(v) for p, v in lats.items()}, shed


def _priority_block(lats: "dict[str, list[float]]") -> dict:
    return {
        priority: (
            {
                "completed": len(values),
                "p50": percentile(values, 50),
                "p95": percentile(values, 95),
                "p99": percentile(values, 99),
            }
            if values
            else {"completed": 0}
        )
        for priority, values in lats.items()
    }


def _run_cluster_point(engines, images, config: ClusterConfig, clients: int,
                       requests_per_client: int) -> dict:
    service = ClusterService(config)
    entry = service.register("bench", engines=dict(engines))
    service.start()
    try:
        service.submit(images[0]).result(timeout=60)  # warm every layer once
        wall, lats, shed = _cluster_closed_loop(service, images, clients, requests_per_client)
        admission = entry.admission.snapshot()
        lifecycle = service.metrics_snapshot()["bench"]["workers_lifecycle"]
    finally:
        service.stop()
    completed = sum(len(v) for v in lats.values())
    return {
        "workers": config.workers,
        "clients": clients,
        "queue_depth": config.queue_depth,
        "requests_offered": clients * requests_per_client,
        "requests_completed": completed,
        "throughput_rps": completed / wall,
        "wall_s": wall,
        "latency_by_priority_s": _priority_block(lats),
        "shed_by_priority": shed,
        "downshifted": admission["downshifted"],
        "worker_deaths": lifecycle["deaths"],
    }


def run_cluster_sweep(requests_per_client: int = 12, smoke: bool = False) -> dict:
    """Sweep worker-process counts through the supervised cluster tier.

    Two phases: a *scaling* sweep (queue deep enough that nothing sheds —
    measures pure worker-count scaling under the accelerator-offload service
    model) and one deliberate *overload* point (shallow queue, excess
    clients — proves the ladder sheds and downshifts instead of letting the
    accepted-traffic p99 collapse).
    """
    worker_counts = (1, 2) if smoke else CLUSTER_WORKER_COUNTS
    if smoke:
        requests_per_client = min(requests_per_client, 6)
    model = _build(PRIMARY_SCALE["image_size"], PRIMARY_SCALE["width_scale"])
    engines = {
        "primary": InferenceEngine(model),
        "int8": InferenceEngine(model, config=PlanConfig(dtype="int8")),
    }
    images = _images(32, PRIMARY_SCALE["image_size"])
    engines["primary"].predict_logits(images[:8])  # compile outside timing

    scaling_rows = []
    for workers in worker_counts:
        config = ClusterConfig(
            workers=workers,
            service_delay_s=CLUSTER_SERVICE_DELAY_S,
            heartbeat_interval_s=0.1,
        )
        scaling_rows.append(
            _run_cluster_point(engines, images, config, clients=4 * workers,
                               requests_per_client=requests_per_client)
        )

    # Overload: 3x more clients than one worker-pair can drain, queue of 8 —
    # the ladder must shed batch and downshift rather than stretch p99.
    overload_config = ClusterConfig(
        workers=2,
        queue_depth=8,
        max_inflight_per_worker=1,
        service_delay_s=CLUSTER_SERVICE_DELAY_S,
        overload_enter_fraction=0.5,
        overload_exit_fraction=0.1,
        overload_dwell_s=0.05,
        heartbeat_interval_s=0.1,
    )
    overload = _run_cluster_point(
        engines, images, overload_config, clients=24,
        requests_per_client=requests_per_client,
    )
    # Accepted work can wait behind at most the queue plus the per-worker
    # pipes; anything beyond that bound would mean shedding failed.
    overload["p99_bound_s"] = (
        (overload_config.queue_depth
         + overload_config.workers * overload_config.max_inflight_per_worker)
        / overload_config.workers
        * CLUSTER_SERVICE_DELAY_S
        + 5 * CLUSTER_SERVICE_DELAY_S  # dispatch/wakeup slack
    )

    tput = {row["workers"]: row["throughput_rps"] for row in scaling_rows}
    base = min(worker_counts)
    summary = {
        "scaling_vs_1_worker": {
            f"workers_{w}": tput[w] / tput[base] for w in worker_counts
        },
        "shed_before_collapse": {
            "shed_total": sum(overload["shed_by_priority"].values()),
            "downshifted": overload["downshifted"],
            "accepted_p99_s": overload["latency_by_priority_s"]["interactive"].get("p99"),
            "p99_bound_s": overload["p99_bound_s"],
        },
    }
    if 4 in tput and 1 in tput:
        summary["speedup_4w_over_1w"] = tput[4] / tput[1]
        summary["meets_2_5x_criterion"] = bool(tput[4] / tput[1] >= 2.5)
    return {
        "metadata": {
            "service_delay_s": CLUSTER_SERVICE_DELAY_S,
            "service_model": (
                "accelerator-offload: workers hold each request for "
                "service_delay_s (modeling FPGA/ASIC compute) so worker-count "
                "scaling is measurable on a 1-core host; host compute alone "
                "would serialize on the single core"
            ),
            "worker_counts": list(worker_counts),
            "requests_per_client": requests_per_client,
            "variants": list(engines),
            "cpu_count": os.cpu_count(),
            "smoke": smoke,
        },
        "scaling_rows": scaling_rows,
        "overload_row": overload,
        "summary": summary,
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests-per-client", type=int, default=24)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--cluster-sweep",
        action="store_true",
        help="run only the multi-process cluster sweep and merge it into --out "
        "as the 'cluster_sweep' section (other sections are preserved)",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    )
    args = parser.parse_args(argv)
    if args.cluster_sweep:
        sweep = run_cluster_sweep(smoke=args.smoke)
        result = json.loads(args.out.read_text()) if args.out.exists() else {
            "benchmark": "dynamic micro-batching server vs batch-size-1 serving",
        }
        result["cluster_sweep"] = sweep
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.out} (cluster_sweep section)")
        for row in sweep["scaling_rows"]:
            inter = row["latency_by_priority_s"]["interactive"]
            print(
                f"  workers={row['workers']} clients={row['clients']:>2} "
                f"{row['throughput_rps']:8.1f} req/s  "
                f"interactive p99={inter['p99'] * 1e3:6.1f}ms"
            )
        over = sweep["overload_row"]
        print(
            f"  overload: shed={sum(over['shed_by_priority'].values())} "
            f"downshifted={over['downshifted']} "
            f"accepted p99={over['latency_by_priority_s']['interactive']['p99'] * 1e3:.1f}ms "
            f"(bound {over['p99_bound_s'] * 1e3:.0f}ms)"
        )
        for key in ("speedup_4w_over_1w", "meets_2_5x_criterion"):
            if key in sweep["summary"]:
                print(f"  {key}: {sweep['summary'][key]}")
        return
    result = run_benchmark(requests_per_client=args.requests_per_client, smoke=args.smoke)
    preserved = (
        json.loads(args.out.read_text()).get("cluster_sweep") if args.out.exists() else None
    )
    if preserved is not None:
        result["cluster_sweep"] = preserved
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    summary = result["summary"]
    print(f"wrote {args.out}")
    for row in result["rows"]:
        lat = row["latency_s"]
        print(
            f"  {row['scale']:>12} {row['transport']:>7} clients={row['clients']:>2} "
            f"micro={'on ' if row['micro_batching'] else 'off'} "
            f"{row['throughput_rps']:8.1f} req/s  "
            f"p50={lat['p50'] * 1e3:6.2f}ms p99={lat['p99'] * 1e3:6.2f}ms "
            f"mean_batch={row['mean_batch_size']:.1f}"
        )
    print(
        f"  micro-batching speedup at {summary['peak_clients']} clients "
        f"({summary['criterion_scale']}): "
        f"{summary['batcher_speedup_at_peak']:.2f}x (batcher), "
        f"{summary['http_speedup_at_peak']:.2f}x (http)"
    )


if __name__ == "__main__":
    main()
