"""Benchmark: reproduce Table 6 (FPGA resource utilisation, networks 7-8).

Built at full Table-1 scale (no training; FLightNN rows emulate trained
operating points).  Asserts the paper's qualitative utilisation pattern.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_table6
from repro.experiments.table6 import render_table6
from repro.hw.fpga import FPGA_ZC706, OVERHEAD


@pytest.mark.benchmark(group="resources")
def test_table6_resource_utilisation(benchmark, profile):
    rows = run_once(benchmark, run_table6, profile)
    report()
    report(render_table6(rows))

    by_key = {(r.network_id, r.scheme_name): r for r in rows}
    net7 = {name: r for (nid, name), r in by_key.items() if nid == 7}
    net8 = {name: r for (nid, name), r in by_key.items() if nid == 8}

    # DSP: hundreds for Full/FP (multipliers), only the overhead handful
    # for the shift families ("LightNNs only need DSP for addition").
    assert net7["Full"].design.usage.dsp > 300
    assert net7["FP_4W8A"].design.usage.dsp > 300
    for name, row in net7.items():
        if name.startswith(("L-", "FL")):
            assert row.design.usage.dsp == OVERHEAD.dsp

    # LUT: shift families use real LUT area but stay below ~60% (paper: 42%
    # max for network 7) — LUTs never bind them.
    for name, row in net7.items():
        if name.startswith(("L-", "FL")):
            frac = row.design.usage.lut / FPGA_ZC706.lut
            assert 0.15 < frac < 0.7
            assert "bram" in row.design.bound_by

    # Everything fits the device.
    for row in rows:
        assert row.design.usage.fits_in(FPGA_ZC706)

    # Speedup pattern within network 7: Full 1x < L-2 < L-1, FP between.
    thr = {name: r.design.throughput for name, r in net7.items()}
    assert thr["L-1_4W8A"] > thr["FP_4W8A"] > thr["Full"]
    assert thr["L-1_4W8A"] > thr["L-2_8W8A"] > thr["Full"]

    # Network 8 (Table 5's net): L-1 about 2x L-2 (paper: 1.95x).
    ratio = net8["L-1_4W8A"].design.throughput / net8["L-2_8W8A"].design.throughput
    assert 1.5 <= ratio <= 3.0
    # FL_a close to L-1's mean k (paper FL8a: k ~ 1.16x point).
    assert net8["FL_a"].mean_k < 1.5
