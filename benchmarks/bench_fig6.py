"""Benchmark: reproduce Fig. 6 — accuracy-storage Pareto fronts.

Width-sweeps network 6 on CIFAR-100 for LightNN-1/2 and FLightNN and
asserts the paper's claim: the FLightNN front is the upper bound of the
LightNN fronts.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_fig6


@pytest.mark.benchmark(group="figures")
def test_fig6_accuracy_storage_front(benchmark, profile):
    result = run_once(benchmark, run_fig6, profile)
    report()
    report(result.render())
    report("\nLightNN front:", [(f"{s:.4f}", f"{a:.1f}") for s, a in result.lightnn_front])
    report("FLightNN front:", [(f"{s:.4f}", f"{a:.1f}") for s, a in result.flightnn_front])

    assert len(result.lightnn_points) == 6   # 3 widths x {L-1, L-2}
    assert len(result.flightnn_points) == 6  # 3 widths x {FL_a, FL_b}
    # The paper's headline claim for this figure:
    assert result.flightnn_is_upper_bound(), (
        "FLightNN front failed to dominate the LightNN front"
    )
