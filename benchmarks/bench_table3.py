"""Benchmark: reproduce Table 3 (SVHN accuracy & FPGA throughput)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_table3


@pytest.mark.benchmark(group="tables")
def test_table3_svhn(benchmark, profile):
    table = run_once(benchmark, run_table3, profile)
    report()
    report(table.render())

    for network_id in (4, 5):
        rows = {r.scheme_key: r for r in table.network_rows(network_id)}
        assert rows["L-2"].storage_mb == pytest.approx(2 * rows["L-1"].storage_mb)
        assert rows["L-1"].throughput > rows["L-2"].throughput > rows["Full"].throughput
        assert rows["FL_a"].throughput >= rows["FL_b"].throughput
        # Accuracy sanity: quantized models stay within a reasonable band
        # of full precision (the paper's SVHN drops are < 1.3 points; at
        # our scale we allow a wider band but no collapse).
        assert rows["L-2"].accuracy > rows["Full"].accuracy - 15.0
        assert rows["FL_b"].accuracy > rows["Full"].accuracy - 15.0
