"""Benchmark: eager vs compiled-engine inference throughput (BENCH_infer.json).

Measures `Trainer.evaluate(use_engine=False)` (the eager autograd-free
fallback) against the compiled :class:`~repro.infer.InferenceEngine` on
synthetic CIFAR-shaped data for the small Table-1 configurations, plus:

* multicore batch-sharding rows (thread / process backends) — note that the
  recorded ``cpu_count`` bounds how much sharding *can* help on the host;
* the float32 deployment mode (:func:`~repro.infer.plan.plan_dtype`) as a
  supplementary row — it is not used for the parity criterion;
* engine/eager logit parity for **all eight** Table-1 configs at the
  engine's default float64 precision;
* a sparsity sweep: synthetically sparsified nets
  (:func:`~repro.quant.sparsify.sparsify_model`) at several dead-filter
  fractions, timing the sparsity-aware engine (dead-filter pruning +
  autotuned shift-plane kernels) against the PR 1 dense engine
  (``PlanConfig(prune=False, kernel="dense")``) so the speedup-vs-sparsity
  curve is tracked across PRs.  Every engine row also records its plan's
  kernel choices, k_i histogram and pruned-filter counts;
* a fusion sweep: the traced-program executor (fused codegen kernels,
  liveness-based buffer reuse, batch blocking — ``PlanConfig(trace=True)``)
  against the same dense plan run op-by-op, at batch 1 and batch 64, with a
  bitwise-equality check and each compiled program's fused-op count and
  naive-vs-peak intermediate-buffer bytes.  ``--fusion-sweep`` runs just
  this section and merges the rows into an existing BENCH_infer.json;
* an integer-only sweep (``--int-sweep``): the int8 execution mode
  (``PlanConfig(dtype="int8")`` — bit-packed shift weights, fixed-point
  activations, multiplier+shift requantization, :mod:`repro.infer.intq`)
  against the float64 engine, with logit parity, argmax agreement, bitwise
  determinism across repeated runs, and the measured per-image integer op
  counts.  The int8 mode models the hardware datapath; numpy's integer
  matmuls bypass BLAS, so its host throughput is reported for tracking,
  not as a speedup claim;
* an intra-op threading sweep (``--thread-sweep``): the serial untiled
  native kernels against the tiled threaded variants
  (``PlanConfig(threads=N)``, :mod:`repro.infer.native.threading`) at
  several thread counts, float64 and int8, batch 1 and 64, with bitwise
  checks against serial at every count and the autotuned GEMM choice
  (OpenBLAS vs the native micro-kernel) per net.  Speedups are bounded by
  ``effective_cpus`` (the affinity/cgroup-visible CPU count, recorded in
  the metadata and the sweep summary) — a 1-CPU host documents that limit
  instead of a scaling claim.

Timing methodology: the machine's run-to-run variance swamps single-shot
timings, so each (config, variant) pair is timed ``reps`` times with the
variants *interleaved* inside each rep, and the median per variant is
reported.  Run directly::

    PYTHONPATH=src python benchmarks/bench_infer.py

or invoke the pytest smoke variant (marker ``infer_bench``)::

    PYTHONPATH=src python -m pytest tests/infer/test_bench_smoke.py -m infer_bench
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.infer import InferenceEngine, PlanConfig, plan_dtype
from repro.utils.cpu import effective_cpus
from repro.models.registry import build_network
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.tensor import Tensor, no_grad
from repro.quant.schemes import paper_schemes
from repro.quant.sparsify import dead_filter_fraction, sparsify_model
from repro.train.trainer import Trainer

# The Table-1 "small" configurations (sub-megabyte nets 1, 4, 5) drive the
# headline eager-vs-engine timing; all eight drive the parity table.
TIMED_CONFIGS = (1, 4, 5)
ALL_CONFIGS = tuple(range(1, 9))
SCHEME = "FL_a"
IMAGE_SIZE = 32
NUM_CLASSES = 10
# Parity-table width scale for the big configs (3, 7, 8), which would
# otherwise dominate the benchmark's runtime without adding structure.
PARITY_WIDTH_SCALE = {3: 0.25, 7: 0.25, 8: 0.5}
# Sparsity sweep: nets and synthetic dead-filter fractions for the
# sparsity-aware-vs-dense speedup curve.  The PR acceptance bar is >= 1.3x
# at >= 30% dead filters.
SPARSITY_CONFIGS = (1, 4)
SPARSITY_FRACTIONS = (0.3, 0.5, 0.7)
# PR 1 equivalent: no pruning, plain dense im2col GEMM kernels.
DENSE_BASELINE = PlanConfig(prune=False, kernel="dense")
# Fusion sweep: traced-program executor (fused codegen kernels, liveness
# buffer reuse, batch blocking) against the same plan run op-by-op.  The PR
# acceptance bar is >= 1.3x at batch 1 and >= 1.15x at batch 64 on at least
# two nets; the traced path must be *bitwise* equal to the interpreter.
FUSION_CONFIGS = (1, 2, 4, 5)
FUSION_BATCHES = (1, 64)
# PR 5 dense path: same kernels/pruning state, no tracing.
UNTRACED_BASELINE = PlanConfig(prune=False, kernel="dense", trace=False)
TRACED_FUSED = PlanConfig(prune=False, kernel="dense")  # trace/fuse default on
# Integer-only sweep: int8 execution mode vs the float64 engine.  Parity is
# checked on every Table-1 structure; only the small nets are timed.
INT_CONFIGS = (1, 4, 5)
INT_PARITY_BATCH = 16
# Native C backend sweep: the numpy codegen vs the native kernels on the
# same plan, float64 and int8, batch 1 and 64.  The PR acceptance bar is
# >= 2x at batch 1 on the small nets with bitwise-equal outputs in both
# dtypes; on a toolchain-free host the sweep records the fallback instead.
NATIVE_CONFIGS = (1, 4, 5)
NATIVE_BATCHES = (1, 64)
# Intra-op threading sweep: serial untiled native kernels vs the tiled
# threaded variants at several thread counts, float64 and int8, batch 1 and
# 64.  The PR acceptance bar is >= 1.5x at batch 64 on >= 2 nets OR a
# recorded effective-CPU limit (the tiled kernels cannot scale past the CPUs
# this process may run on); outputs must stay bitwise equal to serial at
# every count.
THREAD_CONFIGS = (1, 4)
THREAD_BATCHES = (1, 64)
THREAD_COUNTS = (1, 2, 4)


def _build(network_id: int, scheme_key: str = SCHEME, width_scale: float = 1.0, seed: int = 0):
    model = build_network(
        network_id,
        paper_schemes()[scheme_key],
        num_classes=NUM_CLASSES,
        image_size=IMAGE_SIZE,
        width_scale=width_scale,
        rng=seed,
    )
    # Non-trivial BN state so folding is exercised, as after real training.
    rng = np.random.default_rng(seed + 1)
    for m in model.modules():
        if isinstance(m, BatchNorm2d):
            c = m.num_features
            m.gamma.data[...] = rng.uniform(0.5, 1.5, c)
            m.beta.data[...] = rng.normal(0.0, 0.2, c)
            m.running_mean[...] = rng.normal(0.0, 0.5, c)
            m.running_var[...] = rng.uniform(0.5, 2.0, c)
    model.eval()
    return model


def _dataset(n: int, seed: int = 0) -> ArrayDataset:
    rng = np.random.default_rng(seed)
    images = rng.normal(0.0, 1.0, (n, 3, IMAGE_SIZE, IMAGE_SIZE))
    return ArrayDataset(images, rng.integers(0, NUM_CLASSES, n), NUM_CLASSES)


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _plan_fields(engine: InferenceEngine) -> dict:
    """Compact plan metadata for a bench row: kernels, k_hist, pruning."""
    summary = engine.plan_summary()
    return {
        "pruned_filters": summary["pruned_filters_total"],
        "filters_total": summary["filters_total"],
        "dead_filters_remaining": summary["dead_filters_remaining"],
        "kernels": summary["kernels"],
        "k_hist": summary["k_hist"],
        "layers": [
            {
                "op_index": entry["op_index"],
                "type": entry["type"],
                "kernel": entry["kernel"],
                "pruned_filters": entry["pruned_filters"],
                "dead_remaining": entry["dead_remaining"],
                "k_hist": entry.get("k_hist"),
            }
            for entry in summary["layers"]
        ],
    }


def _time_config(network_id: int, dataset: ArrayDataset, reps: int, workers: tuple[int, ...]):
    model = _build(network_id)
    trainer = Trainer(model)
    engine = InferenceEngine(model)
    engine32 = InferenceEngine(model, dtype=plan_dtype(model))

    variants: dict[str, callable] = {
        "eager": lambda: trainer.evaluate(dataset, use_engine=False),
        "engine": lambda: engine.evaluate(dataset),
        "engine_f32": lambda: engine32.evaluate(dataset),
    }
    for w in workers:
        variants[f"engine_thread{w}"] = lambda w=w: engine.evaluate(dataset, workers=w)
        variants[f"engine_process{w}"] = lambda w=w: engine.evaluate(
            dataset, workers=w, backend="process"
        )

    for fn in variants.values():  # warm caches/buffers outside timing
        fn()
    times: dict[str, list[float]] = {k: [] for k in variants}
    for _ in range(reps):  # interleave variants inside each rep
        for key, fn in variants.items():
            times[key].append(_timed(fn))

    n = len(dataset)
    med = {k: statistics.median(v) for k, v in times.items()}
    row = {
        "network_id": network_id,
        "scheme": SCHEME,
        "structure": model.config.structure,
        "depth": model.config.depth,
        "width": model.config.width,
        "images": n,
        "eager_s": med["eager"],
        "engine_s": med["engine"],
        "speedup": med["eager"] / med["engine"],
        "eager_images_per_s": n / med["eager"],
        "engine_images_per_s": n / med["engine"],
        "sharding": {
            k: {"time_s": med[k], "speedup_vs_eager": med["eager"] / med[k]}
            for k in med
            if k.startswith("engine_thread") or k.startswith("engine_process")
        },
        "float32_deployment": {
            "time_s": med["engine_f32"],
            "speedup_vs_eager": med["eager"] / med["engine_f32"],
        },
        "plan": _plan_fields(engine),
    }
    return row


def _sparsity_row(network_id: int, fraction: float, dataset: ArrayDataset, reps: int) -> dict:
    """Time the sparsity-aware engine against the dense baseline on one
    synthetically sparsified net, with a float64 eager-parity check."""
    model = _build(network_id)
    report = sparsify_model(model, fraction)
    dense = InferenceEngine(model, config=DENSE_BASELINE)
    sparse = InferenceEngine(model)

    variants = {
        "dense": lambda: dense.evaluate(dataset),
        "sparse": lambda: sparse.evaluate(dataset),
    }
    for fn in variants.values():  # warm caches/buffers outside timing
        fn()
    times: dict[str, list[float]] = {k: [] for k in variants}
    for _ in range(reps):  # interleave variants inside each rep
        for key, fn in variants.items():
            times[key].append(_timed(fn))
    med = {k: statistics.median(v) for k, v in times.items()}

    parity_images = dataset.images[: min(16, len(dataset))]
    with no_grad():
        want = model(Tensor(parity_images)).numpy()
    got = sparse.predict_logits(parity_images)

    n = len(dataset)
    return {
        "network_id": network_id,
        "scheme": SCHEME,
        "dead_fraction_requested": fraction,
        "dead_fraction_actual": report["dead_fraction"],
        "images": n,
        "dense_s": med["dense"],
        "sparse_s": med["sparse"],
        "speedup_vs_dense": med["dense"] / med["sparse"],
        "dense_images_per_s": n / med["dense"],
        "sparse_images_per_s": n / med["sparse"],
        "max_abs_diff": float(np.max(np.abs(got - want))),
        "plan": _plan_fields(sparse),
    }


def _fusion_row(network_id: int, reps: int, batches: tuple[int, ...] = FUSION_BATCHES) -> dict:
    """Time the traced-fused executor against the untraced interpreter on the
    same dense plan, per batch size, with a bitwise-equality check and the
    compiled program's fusion / buffer-liveness stats.

    ``forward_batch`` is timed directly (not ``evaluate``) because tracing
    targets steady-state serving latency: per-shape programs are compiled and
    bound outside the timed region, exactly as a warm server runs.
    """
    model = _build(network_id)
    untraced = InferenceEngine(model, config=UNTRACED_BASELINE)
    fused = InferenceEngine(model, config=TRACED_FUSED)
    rng = np.random.default_rng(network_id + 100)

    row: dict = {
        "network_id": network_id,
        "scheme": SCHEME,
        "structure": model.config.structure,
        "depth": model.config.depth,
        "batches": {},
    }
    bitwise = True
    for batch in batches:
        images = rng.normal(0.0, 1.0, (batch, 3, IMAGE_SIZE, IMAGE_SIZE))
        want = untraced.forward_batch(images, check_stale=False).copy()  # warm + reference
        got = fused.forward_batch(images, check_stale=False).copy()
        bitwise = bitwise and bool(np.array_equal(got, want))
        # Sub-ms batch-1 calls need inner iterations per measurement; medians
        # are taken across interleaved reps like the rest of the benchmark.
        once = _timed(lambda: fused.forward_batch(images, check_stale=False))
        inner = max(1, min(20, int(0.02 / max(once, 1e-6))))
        times: dict[str, list[float]] = {"untraced": [], "fused": []}
        for _ in range(reps):
            for key, eng in (("untraced", untraced), ("fused", fused)):
                t0 = time.perf_counter()
                for _ in range(inner):
                    eng.forward_batch(images, check_stale=False)
                times[key].append((time.perf_counter() - t0) / inner)
        med = {k: statistics.median(v) for k, v in times.items()}
        prog = fused.plan.traced_program(images.shape)
        stats = prog.stats if prog is not None else {}
        row["batches"][str(batch)] = {
            "untraced_s": med["untraced"],
            "fused_s": med["fused"],
            "speedup": med["untraced"] / med["fused"],
            "program": {
                "nodes": stats.get("nodes"),
                "fused_elementwise": stats.get("fused_elementwise"),
                "block_size": stats.get("block_size"),
                "blocks": stats.get("blocks"),
                "naive_intermediate_bytes": stats.get("naive_intermediate_bytes"),
                "peak_intermediate_bytes": stats.get("peak_intermediate_bytes"),
                "intermediate_bytes_saved": (
                    1.0 - stats["peak_intermediate_bytes"] / stats["naive_intermediate_bytes"]
                    if stats.get("naive_intermediate_bytes")
                    else None
                ),
            },
        }
    row["bitwise_equal"] = bitwise
    row["cache"] = engine_cache_stats()
    return row


def engine_cache_stats() -> dict:
    from repro.infer.kernels import cache_stats

    return cache_stats()


def _fusion_summary(rows: list[dict]) -> dict:
    """Headline numbers for the fusion sweep (the PR acceptance fields)."""
    b1 = [r["batches"]["1"]["speedup"] for r in rows if "1" in r["batches"]]
    b64 = [r["batches"]["64"]["speedup"] for r in rows if "64" in r["batches"]]
    meeting = [
        r["network_id"]
        for r in rows
        if r["batches"].get("1", {}).get("speedup", 0.0) >= 1.3
        and r["batches"].get("64", {}).get("speedup", 0.0) >= 1.15
    ]
    return {
        "max_batch1_speedup": max(b1, default=None),
        "max_batch64_speedup": max(b64, default=None),
        "nets_meeting_bar": meeting,  # >= 1.3x @ batch 1 and >= 1.15x @ batch 64
        "all_bitwise_equal": all(r["bitwise_equal"] for r in rows),
        "min_intermediate_bytes_saved": min(
            (
                spec["program"]["intermediate_bytes_saved"]
                for r in rows
                for spec in r["batches"].values()
                if spec["program"]["intermediate_bytes_saved"] is not None
            ),
            default=None,
        ),
    }


def _parity_row(network_id: int, n_images: int = 16):
    model = _build(network_id, width_scale=PARITY_WIDTH_SCALE.get(network_id, 1.0))
    images = np.random.default_rng(network_id).normal(0.0, 1.0, (n_images, 3, IMAGE_SIZE, IMAGE_SIZE))
    with no_grad():
        want = model(Tensor(images)).numpy()
    got = InferenceEngine(model).predict_logits(images)
    return {
        "network_id": network_id,
        "scheme": SCHEME,
        "max_abs_diff": float(np.max(np.abs(got - want))),
    }


def run_benchmark(
    images: int = 512, reps: int = 5, workers: tuple[int, ...] = (2,), smoke: bool = False
) -> dict:
    """Run the full benchmark; ``smoke=True`` shrinks it to a seconds-scale
    sanity pass (fewer images/reps, one timed config) for the pytest suite."""
    if smoke:
        images, reps, timed_ids = 64, 1, (4,)
        sparsity_ids, fractions = (4,), (0.4,)
        fusion_ids = (1, 4)
    else:
        timed_ids = TIMED_CONFIGS
        sparsity_ids, fractions = SPARSITY_CONFIGS, SPARSITY_FRACTIONS
        fusion_ids = FUSION_CONFIGS
    dataset = _dataset(images)
    configs = [_time_config(nid, dataset, reps, workers) for nid in timed_ids]
    parity = [_parity_row(nid, n_images=8 if smoke else 16) for nid in ALL_CONFIGS]
    sparsity = [
        _sparsity_row(nid, frac, dataset, reps) for nid in sparsity_ids for frac in fractions
    ]
    fusion = [_fusion_row(nid, reps) for nid in fusion_ids]
    return {
        "benchmark": "compiled inference engine vs eager Trainer.evaluate",
        "metadata": {
            "images": images,
            "image_shape": [3, IMAGE_SIZE, IMAGE_SIZE],
            "reps": reps,
            "timing": "median over interleaved reps",
            "scheme": SCHEME,
            "cpu_count": os.cpu_count(),
            "effective_cpus": effective_cpus(),
            "sharding_note": (
                "worker rows can only scale beyond 1x the serial engine when "
                "effective_cpus > 1 (the affinity/cgroup-visible count, not the "
                "machine total); on a single-CPU host they measure pure pool overhead"
            ),
            "numpy": np.__version__,
            "engine_dtype": "float64 (default; float32 rows are the opt-in deployment mode)",
            "smoke": smoke,
        },
        "configs": configs,
        "parity_float64": parity,
        "sparsity_sweep": sparsity,
        "fusion_sweep": fusion,
        "summary": {
            "min_single_worker_speedup": min(c["speedup"] for c in configs),
            "max_parity_abs_diff": max(p["max_abs_diff"] for p in parity),
            "min_sparsity_speedup": min(s["speedup_vs_dense"] for s in sparsity),
            "max_sparsity_speedup": max(s["speedup_vs_dense"] for s in sparsity),
            "max_sparsity_parity_abs_diff": max(s["max_abs_diff"] for s in sparsity),
            "fusion": _fusion_summary(fusion),
        },
    }


def _int_row(network_id: int, reps: int, batch: int = INT_PARITY_BATCH) -> dict:
    """One net through the integer-only mode: parity, determinism, measured
    integer op counts, and host timing vs the float64 engine.

    The timing is informational — the int8 mode models the hardware
    shift/add datapath and numpy routes integer matmuls through slow
    non-BLAS loops, so it is expected to be *slower* on the host.
    """
    model = _build(network_id, width_scale=PARITY_WIDTH_SCALE.get(network_id, 1.0))
    images = np.random.default_rng(network_id + 300).normal(
        0.0, 1.0, (batch, 3, IMAGE_SIZE, IMAGE_SIZE)
    )
    float_engine = InferenceEngine(model)
    int_engine = InferenceEngine(model, config=PlanConfig(dtype="int8"))

    want = float_engine.predict_logits(images)  # warm + reference
    got = int_engine.predict_logits(images)
    repeat = int_engine.predict_logits(images)

    times: dict[str, list[float]] = {"float": [], "int8": []}
    for _ in range(reps):  # interleave variants inside each rep
        for key, eng in (("float", float_engine), ("int8", int_engine)):
            times[key].append(_timed(lambda eng=eng: eng.predict_logits(images)))
    med = {k: statistics.median(v) for k, v in times.items()}

    intq = int_engine.plan_summary()["intq"]
    return {
        "network_id": network_id,
        "scheme": SCHEME,
        "images": batch,
        "max_abs_delta": float(np.max(np.abs(got - want))),
        "argmax_agreement": float((got.argmax(axis=1) == want.argmax(axis=1)).mean()),
        "deterministic": bool(np.array_equal(got, repeat)),
        "float_s": med["float"],
        "int8_s": med["int8"],
        "int8_vs_float": med["float"] / med["int8"],
        "accum_dtypes": sorted({layer["accum_dtype"] for layer in intq["layers"]}),
        "impls": sorted({layer["impl"] for layer in intq["layers"]}),
        "requant_bits": sorted({layer["requant_bits"] for layer in intq["layers"]}),
        "totals_per_image": intq["totals_per_image"],
        "calibration": intq["calibration"],
    }


def _int_summary(rows: list[dict]) -> dict:
    """Headline numbers for the int sweep (the PR acceptance fields)."""
    return {
        "min_argmax_agreement": min(r["argmax_agreement"] for r in rows),
        "max_abs_delta": max(r["max_abs_delta"] for r in rows),
        "all_deterministic": all(r["deterministic"] for r in rows),
        "accum_dtypes": sorted({d for r in rows for d in r["accum_dtypes"]}),
        "nets": [r["network_id"] for r in rows],
    }


def run_int_sweep(reps: int = 5, smoke: bool = False) -> dict:
    """Just the integer-only sweep, for merging into an existing
    BENCH_infer.json (``--int-sweep``) and the CI smoke job.

    Parity/determinism is checked on every Table-1 structure (the
    acceptance criterion); timing reps only matter for the throughput
    fields, so smoke mode shrinks reps, not coverage.
    """
    ids = (1, 4) if smoke else ALL_CONFIGS
    rows = [_int_row(nid, reps) for nid in ids]
    return {"int_sweep": rows, "int_summary": _int_summary(rows)}


def _print_int(rows: list[dict], summary: dict) -> None:
    for row in rows:
        totals = row["totals_per_image"]
        print(
            f"net{row['network_id']} int8: delta {row['max_abs_delta']:.2e}, "
            f"argmax {row['argmax_agreement']:.1%}, det={row['deterministic']}, "
            f"acc={'/'.join(row['accum_dtypes'])}, "
            f"{totals['shift_ops']:.0f} shifts + {totals['add_ops']:.0f} adds/img, "
            f"{row['int8_vs_float']:.2f}x vs float"
        )
    print(
        f"int8: min argmax agreement {summary['min_argmax_agreement']:.1%}, "
        f"max delta {summary['max_abs_delta']:.2e}, "
        f"deterministic={summary['all_deterministic']}"
    )


def _native_row(network_id: int, reps: int, batches: tuple[int, ...] = NATIVE_BATCHES) -> dict:
    """Time the native C kernels against the numpy codegen on the same plan,
    in both execution dtypes, with bitwise-equality checks and the per-layer
    backend selections the autotuner/self-check ladder actually made."""
    model = _build(network_id)
    engines = {
        "numpy": InferenceEngine(model, config=PlanConfig(backend="numpy")),
        "native": InferenceEngine(model, config=PlanConfig(backend="auto")),
        "int8_numpy": InferenceEngine(model, config=PlanConfig(dtype="int8", backend="numpy")),
        "int8_native": InferenceEngine(model, config=PlanConfig(dtype="int8", backend="auto")),
    }
    rng = np.random.default_rng(network_id + 500)
    row: dict = {
        "network_id": network_id,
        "scheme": SCHEME,
        "structure": model.config.structure,
        "depth": model.config.depth,
        "batches": {},
    }
    bitwise = {"float64": True, "int8": True}
    for batch in batches:
        images = rng.normal(0.0, 1.0, (batch, 3, IMAGE_SIZE, IMAGE_SIZE))
        # Warm every engine (plan build, native compiles, first-call parity
        # checks) and collect reference outputs outside the timed region.
        outs = {k: eng.forward_batch(images, check_stale=False).copy() for k, eng in engines.items()}
        bitwise["float64"] &= bool(
            np.array_equal(outs["native"].view(np.uint8), outs["numpy"].view(np.uint8))
        )
        bitwise["int8"] &= bool(
            np.array_equal(outs["int8_native"].view(np.uint8), outs["int8_numpy"].view(np.uint8))
        )
        once = min(
            _timed(lambda eng=eng: eng.forward_batch(images, check_stale=False))
            for eng in engines.values()
        )
        inner = max(1, min(20, int(0.02 / max(once, 1e-6))))
        times: dict[str, list[float]] = {k: [] for k in engines}
        for _ in range(reps):  # interleave variants inside each rep
            for key, eng in engines.items():
                t0 = time.perf_counter()
                for _ in range(inner):
                    eng.forward_batch(images, check_stale=False)
                times[key].append((time.perf_counter() - t0) / inner)
        med = {k: statistics.median(v) for k, v in times.items()}
        row["batches"][str(batch)] = {
            "numpy_s": med["numpy"],
            "native_s": med["native"],
            "speedup": med["numpy"] / med["native"],
            "int8_numpy_s": med["int8_numpy"],
            "int8_native_s": med["int8_native"],
            "int8_speedup": med["int8_numpy"] / med["int8_native"],
            "int8_native_vs_float_numpy": med["numpy"] / med["int8_native"],
        }
    shape = (batches[-1], 3, IMAGE_SIZE, IMAGE_SIZE)
    prog = engines["native"].plan.traced_program(shape)
    row["float64_layers"] = (
        [{"node": i, **rec} for i, rec in sorted(prog.node_backends.items())] if prog else []
    )
    intq = engines["int8_native"].plan_summary().get("intq") or {}
    row["int8_layers"] = [
        {
            "op_index": layer["op_index"],
            "type": layer["type"],
            "impl": layer["impl"],
            "backend": layer.get("backend"),
        }
        for layer in intq.get("layers", [])
    ]
    row["bitwise_equal"] = bitwise
    return row


def _native_summary(rows: list[dict]) -> dict:
    """Headline numbers for the native sweep (the PR acceptance fields)."""
    from repro.infer.native import binding

    status = binding.status()
    b1 = [r["batches"].get("1", {}).get("speedup") for r in rows]
    int8_b1 = [r["batches"].get("1", {}).get("int8_speedup") for r in rows]
    return {
        "toolchain": {k: status.get(k) for k in ("available", "compiler", "loader")},
        "min_batch1_speedup": min((s for s in b1 if s), default=None),
        "max_batch1_speedup": max((s for s in b1 if s), default=None),
        "min_int8_batch1_speedup": min((s for s in int8_b1 if s), default=None),
        "nets_meeting_bar": [  # >= 2x over the numpy codegen at batch 1
            r["network_id"] for r in rows if r["batches"].get("1", {}).get("speedup", 0.0) >= 2.0
        ],
        "all_bitwise_equal": all(
            r["bitwise_equal"]["float64"] and r["bitwise_equal"]["int8"] for r in rows
        ),
    }


def run_native_sweep(reps: int = 5, smoke: bool = False) -> dict:
    """Just the native-vs-numpy backend sweep, for merging into an existing
    BENCH_infer.json (``--native-sweep``) and the CI smoke job."""
    ids = (4,) if smoke else NATIVE_CONFIGS
    rows = [_native_row(nid, reps) for nid in ids]
    return {"native_sweep": rows, "native_summary": _native_summary(rows)}


def _print_native(rows: list[dict], summary: dict) -> None:
    for row in rows:
        parts = []
        for batch, spec in row["batches"].items():
            parts.append(
                f"b{batch} {spec['numpy_s'] * 1e3:.2f}->{spec['native_s'] * 1e3:.2f}ms "
                f"({spec['speedup']:.2f}x, int8 {spec['int8_speedup']:.2f}x)"
            )
        native_nodes = sum(1 for l in row["float64_layers"] if l.get("backend") == "native")
        print(
            f"net{row['network_id']} native: {' | '.join(parts)} | "
            f"{native_nodes}/{len(row['float64_layers'])} nodes native, "
            f"bitwise f64={row['bitwise_equal']['float64']} int8={row['bitwise_equal']['int8']}"
        )
    print(
        f"native: toolchain={summary['toolchain']}, nets meeting bar (>=2x b1): "
        f"{summary['nets_meeting_bar']}, bitwise={summary['all_bitwise_equal']}"
    )


def _default_thread_counts() -> tuple[int, ...]:
    """Thread counts to sweep: the determinism triple {1, 2, 4} plus the
    host's effective CPU count (so a wide host records its full scaling)."""
    cpus = effective_cpus()
    counts = {1, 2, 4}
    if cpus > 1:
        counts.add(min(cpus, 8))
    return tuple(sorted(counts))


def _thread_row(
    network_id: int,
    reps: int,
    counts: tuple[int, ...],
    batches: tuple[int, ...] = THREAD_BATCHES,
) -> dict:
    """Serial untiled native kernels vs the tiled threaded variants.

    Per (batch, dtype, thread count): median time, speedup vs serial, a
    bitwise-equality check against the serial engine, and the GEMM kernel
    (OpenBLAS panels vs the native micro-kernel) the autotuner recorded for
    the dense layers — the choice is shared across thread counts by design.
    """
    model = _build(network_id)
    serial = {
        "float64": InferenceEngine(model, config=PlanConfig(backend="auto")),
        "int8": InferenceEngine(model, config=PlanConfig(dtype="int8", backend="auto")),
    }
    threaded = {
        ("float64", t): InferenceEngine(model, config=PlanConfig(threads=t)) for t in counts
    }
    threaded.update(
        {
            ("int8", t): InferenceEngine(model, config=PlanConfig(dtype="int8", threads=t))
            for t in counts
        }
    )
    rng = np.random.default_rng(network_id + 700)
    row: dict = {
        "network_id": network_id,
        "scheme": SCHEME,
        "structure": model.config.structure,
        "depth": model.config.depth,
        "batches": {},
    }
    bitwise = True
    for batch in batches:
        images = rng.normal(0.0, 1.0, (batch, 3, IMAGE_SIZE, IMAGE_SIZE))
        refs = {
            dt: eng.forward_batch(images, check_stale=False).copy()
            for dt, eng in serial.items()
        }  # warm + serial reference
        spec: dict = {}
        for dt in ("float64", "int8"):
            outs = {}
            for t in counts:
                out = threaded[(dt, t)].forward_batch(images, check_stale=False).copy()
                outs[t] = out
                bitwise = bitwise and bool(
                    np.array_equal(out.view(np.uint8), refs[dt].view(np.uint8))
                )
            once = _timed(
                lambda eng=serial[dt]: eng.forward_batch(images, check_stale=False)
            )
            inner = max(1, min(20, int(0.02 / max(once, 1e-6))))
            times: dict[object, list[float]] = {"serial": [], **{t: [] for t in counts}}
            engines = [("serial", serial[dt])] + [(t, threaded[(dt, t)]) for t in counts]
            for _ in range(reps):  # interleave variants inside each rep
                for key, eng in engines:
                    t0 = time.perf_counter()
                    for _ in range(inner):
                        eng.forward_batch(images, check_stale=False)
                    times[key].append((time.perf_counter() - t0) / inner)
            med = {k: statistics.median(v) for k, v in times.items()}
            spec[dt] = {
                "serial_s": med["serial"],
                "threads": {
                    str(t): {
                        "time_s": med[t],
                        "speedup_vs_serial": med["serial"] / med[t],
                    }
                    for t in counts
                },
            }
        row["batches"][str(batch)] = spec
    shape = (batches[-1], 3, IMAGE_SIZE, IMAGE_SIZE)
    prog = threaded[("float64", counts[-1])].plan.traced_program(shape)
    gemms = sorted(
        {
            rec["gemm"]
            for rec in (prog.node_backends.values() if prog else [])
            if rec.get("gemm")
        }
    )
    row["gemm_choices"] = gemms
    row["bitwise_equal_vs_serial"] = bitwise
    return row


def _thread_summary(rows: list[dict], counts: tuple[int, ...]) -> dict:
    """Headline numbers for the thread sweep (the PR acceptance fields).

    The bar is >= 1.5x at batch 64 on >= 2 nets OR a documented
    effective-CPU limit: the tiled kernels cannot run faster than the CPU
    set the process is pinned to, so a 1-CPU host records the limit rather
    than a speedup.
    """
    cpus = effective_cpus()
    best64 = {
        r["network_id"]: max(
            (
                spec["speedup_vs_serial"]
                for spec in r["batches"].get("64", {})
                .get("float64", {})
                .get("threads", {})
                .values()
            ),
            default=None,
        )
        for r in rows
    }
    meeting = [nid for nid, s in best64.items() if s is not None and s >= 1.5]
    from repro.infer.native import binding

    pool = binding.status().get("threading", {})
    return {
        "effective_cpus": cpus,
        "thread_counts": list(counts),
        "best_batch64_speedup": best64,
        "nets_meeting_bar": meeting,  # >= 1.5x over serial at batch 64
        "cpu_limited": cpus < 2,
        "cpu_limit_note": (
            f"host exposes {cpus} effective CPU(s) to this process "
            "(affinity/cgroup mask); intra-op threading cannot exceed 1x here — "
            "the sweep verifies bitwise invariance and records overheads instead"
            if cpus < 2
            else None
        ),
        "all_bitwise_equal_vs_serial": all(r["bitwise_equal_vs_serial"] for r in rows),
        "pool": {k: pool.get(k) for k in ("workers", "tiles_total", "tiles_stolen", "steal_fraction")},
    }


def run_thread_sweep(
    reps: int = 5, smoke: bool = False, counts: tuple[int, ...] | None = None
) -> dict:
    """Just the intra-op threading sweep, for merging into an existing
    BENCH_infer.json (``--thread-sweep``) and the CI smoke job."""
    if counts is None:
        counts = (1, 2) if smoke else _default_thread_counts()
    ids = (4,) if smoke else THREAD_CONFIGS
    rows = [_thread_row(nid, reps, counts) for nid in ids]
    return {"thread_sweep": rows, "thread_summary": _thread_summary(rows, counts)}


def _print_threads(rows: list[dict], summary: dict) -> None:
    for row in rows:
        parts = []
        for batch, spec in row["batches"].items():
            best = max(
                spec["float64"]["threads"].items(),
                key=lambda kv: kv[1]["speedup_vs_serial"],
            )
            parts.append(
                f"b{batch} {spec['float64']['serial_s'] * 1e3:.2f}ms -> "
                f"{best[1]['time_s'] * 1e3:.2f}ms @ t{best[0]} "
                f"({best[1]['speedup_vs_serial']:.2f}x)"
            )
        print(
            f"net{row['network_id']} threads: {' | '.join(parts)} | "
            f"gemm={row['gemm_choices'] or ['blas']}, "
            f"bitwise={row['bitwise_equal_vs_serial']}"
        )
    note = summary["cpu_limit_note"]
    print(
        f"threads: effective_cpus={summary['effective_cpus']}, nets meeting bar "
        f"(>=1.5x b64): {summary['nets_meeting_bar']}, "
        f"bitwise={summary['all_bitwise_equal_vs_serial']}"
        + (f" | {note}" if note else "")
    )


def run_fusion_sweep(reps: int = 5, smoke: bool = False) -> dict:
    """Just the traced-vs-interpreter sweep, for merging into an existing
    BENCH_infer.json (``--fusion-sweep``) and the CI smoke job."""
    fusion_ids = (1, 4) if smoke else FUSION_CONFIGS
    rows = [_fusion_row(nid, reps) for nid in fusion_ids]
    return {"fusion_sweep": rows, "fusion_summary": _fusion_summary(rows)}


def _print_fusion(rows: list[dict], summary: dict) -> None:
    for row in rows:
        parts = []
        for batch, spec in row["batches"].items():
            parts.append(
                f"b{batch} {spec['untraced_s'] * 1e3:.2f}->{spec['fused_s'] * 1e3:.2f}ms "
                f"({spec['speedup']:.2f}x)"
            )
        prog = next(iter(row["batches"].values()))["program"]
        print(
            f"net{row['network_id']} traced-fused: {' | '.join(parts)} | "
            f"{prog['fused_elementwise']} ops fused, bitwise={row['bitwise_equal']}"
        )
    print(
        f"fusion: nets meeting bar (>=1.3x b1, >=1.15x b64): {summary['nets_meeting_bar']}, "
        f"bitwise={summary['all_bitwise_equal']}, "
        f"min intermediate-bytes saved {summary['min_intermediate_bytes_saved']:.0%}"
    )


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--images", type=int, default=512)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--fusion-sweep",
        action="store_true",
        help="run only the traced-fused vs interpreter sweep and merge the "
        "rows into --out (other sections of an existing file are kept)",
    )
    parser.add_argument(
        "--int-sweep",
        action="store_true",
        help="run only the integer-only (int8) vs float64 sweep and merge "
        "the rows into --out (other sections of an existing file are kept)",
    )
    parser.add_argument(
        "--native-sweep",
        action="store_true",
        help="run only the native-C vs numpy-codegen backend sweep and merge "
        "the rows into --out (other sections of an existing file are kept)",
    )
    parser.add_argument(
        "--thread-sweep",
        action="store_true",
        help="run only the intra-op threading sweep (serial vs tiled threaded "
        "kernels, float64 + int8, batch 1 and 64) and merge the rows into "
        "--out (other sections of an existing file are kept)",
    )
    parser.add_argument(
        "--clear-cache",
        action="store_true",
        help="clear the in-memory and on-disk kernel/autotune/native caches "
        "before running, for cold-cache measurements",
    )
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parent.parent / "BENCH_infer.json"
    )
    args = parser.parse_args(argv)
    if args.clear_cache:
        from repro.infer import clear_caches

        clear_caches(disk=True)
        print("kernel/autotune/native caches cleared (memory + disk)")
    if args.native_sweep:
        sweep = run_native_sweep(reps=args.reps, smoke=args.smoke)
        result = json.loads(args.out.read_text()) if args.out.exists() else {}
        result["native_sweep"] = sweep["native_sweep"]
        result.setdefault("summary", {})["native"] = sweep["native_summary"]
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        _print_native(sweep["native_sweep"], sweep["native_summary"])
        print(f"-> {args.out}")
        return
    if args.thread_sweep:
        sweep = run_thread_sweep(reps=args.reps, smoke=args.smoke)
        result = json.loads(args.out.read_text()) if args.out.exists() else {}
        result["thread_sweep"] = sweep["thread_sweep"]
        result.setdefault("summary", {})["threads"] = sweep["thread_summary"]
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        _print_threads(sweep["thread_sweep"], sweep["thread_summary"])
        print(f"-> {args.out}")
        return
    if args.int_sweep:
        sweep = run_int_sweep(reps=args.reps, smoke=args.smoke)
        result = json.loads(args.out.read_text()) if args.out.exists() else {}
        result["int_sweep"] = sweep["int_sweep"]
        result.setdefault("summary", {})["intq"] = sweep["int_summary"]
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        _print_int(sweep["int_sweep"], sweep["int_summary"])
        print(f"-> {args.out}")
        return
    if args.fusion_sweep:
        sweep = run_fusion_sweep(reps=args.reps, smoke=args.smoke)
        result = json.loads(args.out.read_text()) if args.out.exists() else {}
        result["fusion_sweep"] = sweep["fusion_sweep"]
        result.setdefault("summary", {})["fusion"] = sweep["fusion_summary"]
        args.out.write_text(json.dumps(result, indent=2) + "\n")
        _print_fusion(sweep["fusion_sweep"], sweep["fusion_summary"])
        print(f"-> {args.out}")
        return
    result = run_benchmark(images=args.images, reps=args.reps, smoke=args.smoke)
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["configs"]:
        print(
            f"net{row['network_id']} ({row['structure']}-{row['depth']} w{row['width']}): "
            f"eager {row['eager_images_per_s']:.0f} img/s -> engine "
            f"{row['engine_images_per_s']:.0f} img/s ({row['speedup']:.2f}x)"
        )
    for row in result["sparsity_sweep"]:
        print(
            f"net{row['network_id']} sparsity {row['dead_fraction_actual']:.2f}: "
            f"dense {row['dense_images_per_s']:.0f} img/s -> sparse "
            f"{row['sparse_images_per_s']:.0f} img/s ({row['speedup_vs_dense']:.2f}x, "
            f"{row['plan']['pruned_filters']} filters pruned, "
            f"kernels {row['plan']['kernels']})"
        )
    _print_fusion(result["fusion_sweep"], result["summary"]["fusion"])
    print(
        f"min speedup {result['summary']['min_single_worker_speedup']:.2f}x, "
        f"min sparsity speedup {result['summary']['min_sparsity_speedup']:.2f}x, "
        f"max parity diff {result['summary']['max_parity_abs_diff']:.2e} -> {args.out}"
    )


if __name__ == "__main__":
    main()
