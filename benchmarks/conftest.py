"""Benchmark fixtures.

Each experiment benchmark prints the reproduced paper table/figure series
and times the (cached-after-first-run) experiment pipeline with
pytest-benchmark.  Heavy experiments run exactly once per invocation
(``rounds=1``); the shared JSON cache under ``results/`` makes repeated
benchmark sessions cheap.
"""

from __future__ import annotations

import sys

import pytest

from repro.experiments import get_profile


@pytest.fixture(scope="session")
def profile():
    """Scale profile for the whole benchmark session (env REPRO_PROFILE)."""
    return get_profile()


def pytest_terminal_summary(terminalreporter):
    """Dump each passed benchmark's captured stdout after the run.

    The whole point of this suite is to *print* the reproduced paper
    tables/series; pytest's default capture would hide them on success,
    so this hook replays them in the terminal summary.
    """
    for report_obj in terminalreporter.stats.get("passed", []):
        sections = [
            content for name, content in getattr(report_obj, "sections", [])
            if "stdout" in name and content.strip()
        ]
        if sections:
            terminalreporter.write_sep("-", f"reproduced output: {report_obj.nodeid}")
            for content in sections:
                terminalreporter.write(content)
                if not content.endswith("\n"):
                    terminalreporter.write("\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def report(*args, **kwargs) -> None:
    """Print a reproduced table/series line.

    Captured during the test and replayed by :func:`pytest_terminal_summary`,
    so the tables appear in ``pytest benchmarks/`` output on success.
    """
    print(*args, **kwargs)
    sys.stdout.flush()
