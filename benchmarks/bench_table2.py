"""Benchmark: reproduce Table 2 (CIFAR-10 accuracy & FPGA throughput).

Trains networks 1-3 under all six model families and prints the
paper-format table.  Shape assertions check the paper's claims:
storage ratios, throughput ordering, and FLightNN interpolation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_table2


@pytest.mark.benchmark(group="tables")
def test_table2_cifar10(benchmark, profile):
    table = run_once(benchmark, run_table2, profile)
    report()
    report(table.render())

    for network_id in (1, 2, 3):
        rows = {r.scheme_key: r for r in table.network_rows(network_id)}
        # Storage: L-2 = 2x L-1 = 2x FP; FL between L-1 and L-2.
        assert rows["L-2"].storage_mb == pytest.approx(2 * rows["L-1"].storage_mb)
        assert rows["FP"].storage_mb == pytest.approx(rows["L-1"].storage_mb)
        assert rows["L-1"].storage_mb <= rows["FL_a"].storage_mb <= rows["L-2"].storage_mb + 1e-9
        # Throughput ordering: every quantized model beats Full; L-1 beats
        # L-2; (F)LightNN at low k beats fixed point (the "up to 2x" claim).
        assert rows["L-1"].throughput > rows["L-2"].throughput > rows["Full"].throughput
        assert rows["FL_a"].throughput > rows["FP"].throughput
        assert rows["FL_a"].throughput <= rows["L-1"].throughput * 1.001
        # FLightNN k interpolates.
        assert 0.9 <= rows["FL_a"].mean_filter_k <= 2.0
        assert rows["FL_a"].mean_filter_k <= rows["FL_b"].mean_filter_k + 1e-9
