"""Benchmark: sensitivity of the hardware-model conclusions to calibration.

Perturbs the ASIC per-op energies and the FPGA per-unit costs by up to 2x
in each direction and checks that the orderings behind the paper's claims
survive every configuration (analysis and the deliberately excluded
marginal pair are documented in :mod:`repro.hw.sensitivity`).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.hw import (
    energy_ordering_sensitivity,
    network_largest_layer_ops,
    throughput_ordering_sensitivity,
)
from repro.models import build_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def ops_by_scheme():
    out = {}
    for key in ("Full", "L-2", "L-1", "FP"):
        net = build_network(7, SCHEMES[key], num_classes=10, image_size=32, rng=0)
        out[key] = network_largest_layer_ops(net)
    return out


@pytest.mark.benchmark(group="sensitivity")
def test_energy_ordering_sensitivity(benchmark, ops_by_scheme):
    outcome = run_once(benchmark, energy_ordering_sensitivity, ops_by_scheme)
    report(f"\n{outcome.trials} energy-table perturbations, "
          f"{len(outcome.violations)} violations")
    assert outcome.robust, outcome.violations


@pytest.mark.benchmark(group="sensitivity")
def test_throughput_ordering_sensitivity(benchmark, ops_by_scheme):
    outcome = run_once(benchmark, throughput_ordering_sensitivity, ops_by_scheme)
    report(f"\n{outcome.trials} FPGA-cost perturbations, "
          f"{len(outcome.violations)} violations")
    assert outcome.robust, outcome.violations
