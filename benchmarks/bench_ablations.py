"""Ablation benchmarks for the design choices behind the reproduction.

Four studies on network 1 / synthetic CIFAR-10 (library entry points in
:mod:`repro.experiments.ablations`; rationale in DESIGN.md):

* **Gradual quantization** (paper Sec. 5.2): FLightNN trained with a
  lambda warm-up (start at k=2, tighten) vs constraints applied from
  step 0.  The paper credits gradual quantization for FLightNN beating
  LightNN-1 at equal storage.
* **Threshold freeze**: letting gates churn until the last epoch vs
  freezing them for a fine-tuning phase.
* **Exponent window**: LightNN-1 accuracy with the 4-bit (sign + 3-bit
  exponent) window vs an artificially narrow 2-level window — the
  representational-range knob of the power-of-two code.
* **Regularization mode**: the proximal group lasso (default) vs the
  paper's literal gradient loss at a short schedule — documents why the
  proximal form is the default (the gradient form barely sparsifies in
  8 epochs).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report, run_once
from repro.data import make_cifar10_like
from repro.experiments.ablations import (
    ablate_exponent_window,
    ablate_gradual_quantization,
    ablate_regularization_mode,
    ablate_threshold_freeze,
)


@pytest.fixture(scope="module")
def split():
    return make_cifar10_like(size_scale=0.5, samples=512)


def show(points):
    report()
    for point in points.values():
        report(f"  {point.label:14s} acc={point.accuracy:5.1f}%  "
              f"k={point.mean_filter_k:.2f}  storage={point.storage_mb * 1024:.2f}KB")


@pytest.mark.benchmark(group="ablations")
def test_ablation_gradual_quantization(benchmark, split):
    points = run_once(benchmark, ablate_gradual_quantization, split)
    show(points)
    # Both reach the cheap operating point; gradual must not be worse by a
    # large margin (the paper claims it is typically better).
    assert points["gradual"].mean_filter_k <= 1.4
    assert points["immediate"].mean_filter_k <= 1.4
    assert points["gradual"].accuracy >= points["immediate"].accuracy - 5.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_threshold_freeze(benchmark, split):
    points = run_once(benchmark, ablate_threshold_freeze, split)
    show(points)
    assert points["frozen"].accuracy > 50.0
    assert points["frozen"].accuracy >= points["churning"].accuracy - 5.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_exponent_window(benchmark, split):
    points = run_once(benchmark, ablate_exponent_window, split)
    show(points)
    # The paper's 4-bit window must beat a 2-level code clearly.
    assert points["wide"].accuracy > points["narrow"].accuracy


@pytest.mark.benchmark(group="ablations")
def test_ablation_regularization_mode(benchmark, split):
    points = run_once(benchmark, ablate_regularization_mode, split)
    show(points)
    # The proximal form actually sparsifies at short schedules; the
    # literal gradient form (under Adam) stays near k = 2.
    assert points["proximal"].mean_filter_k < points["gradient"].mean_filter_k
    assert points["gradient"].accuracy > 50.0
