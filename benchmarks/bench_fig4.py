"""Benchmark: reproduce Fig. 4 — regularization loss vs weight value.

Evaluates the two terms of ``L_reg,2`` with the paper's exact coefficients
(lambda_0 = 1e-5, lambda_1 = 3e-5) over w in [0, 2] and asserts the curve
shapes the figure shows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import report, run_once
from repro.experiments import run_fig4


@pytest.mark.benchmark(group="figures")
def test_fig4_regularization_curve(benchmark):
    series = run_once(benchmark, run_fig4)
    w = series["weight"]
    first, second, total = series["first_term"], series["second_term"], series["total"]

    report()
    report("Fig 4 samples (weight, first term, second term, total):")
    for x in (0.25, 0.5, 0.75, 1.0, 1.5, 2.0):
        i = int(np.argmin(np.abs(w - x)))
        report(f"  w={w[i]:4.2f}  {first[i]:.2e}  {second[i]:.2e}  {total[i]:.2e}")

    # First term is linear: lambda_0 * |w|.
    np.testing.assert_allclose(first, 1e-5 * np.abs(w), atol=1e-18)
    # Second term vanishes exactly at powers of two and is positive between.
    for x in (0.25, 0.5, 1.0, 2.0):
        i = int(np.argmin(np.abs(w - x)))
        assert second[i] < 1e-12
    between = (w > 0.55) & (w < 0.95)
    assert (second[between] > 0).all()
    # Total is the sum and peaks between grid points (sawtooth on a ramp).
    np.testing.assert_allclose(total, first + second, atol=1e-18)
    assert total.max() == pytest.approx((first + second).max())
    # Scale matches the paper's axis (loss < 4e-5 over [0, 2] per weight...
    # the paper sums over a filter; per-scalar values sit below ~5e-5).
    assert total.max() < 1e-4
