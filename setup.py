"""Setup shim: metadata lives in setup.cfg.

The execution environment has no ``wheel`` package and no network access, so
PEP 517 builds (which need ``bdist_wheel``) fail; a classic setup.py +
setup.cfg keeps ``pip install -e .`` working offline.
"""

from setuptools import setup

setup()
