"""Tests for table/figure experiment plumbing (tiny profile, fast)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.accuracy_tables import (
    TABLE_SPECS,
    AccuracyTable,
    run_accuracy_table,
)
from repro.experiments.common import ExperimentProfile
from repro.experiments.figures import run_fig4, run_fig6
from repro.experiments.table6 import FL_EMULATION_PERCENTILES, render_table6, run_table6


@pytest.fixture(scope="module")
def tiny_profile():
    return ExperimentProfile(
        name="tinytab",
        size_scale=0.3,
        train_samples=96,
        width_scale=0.15,
        epochs=2,
        batch_size=32,
        lr=3e-3,
        lambda_warmup_epochs=1,
        threshold_freeze_epoch=1,
        threshold_lr_scale=10.0,
        fl_lambdas_a=(0.0, 0.02),
        fl_lambdas_b=(0.0, 0.002),
    )


class TestTableSpecs:
    def test_all_four_tables(self):
        assert set(TABLE_SPECS) == {"table2", "table3", "table4", "table5"}

    def test_table5_is_top5_and_shift_only(self):
        networks, dataset, schemes, metric = TABLE_SPECS["table5"]
        assert networks == (8,)
        assert dataset == "imagenet"
        assert metric == "top5"
        assert "Full" not in schemes and "FP" not in schemes

    def test_all_46_paper_models_covered(self):
        """The paper reports 46 FPGA-design experiments: 7 networks x 6
        model families + network 8 x 4 shift families = 46 rows."""
        total = sum(len(nets) * len(schemes) for nets, _, schemes, _ in TABLE_SPECS.values())
        assert total == 46


class TestRunAccuracyTable:
    def test_unknown_table(self):
        with pytest.raises(ConfigurationError):
            run_accuracy_table("table9")

    def test_table3_end_to_end_tiny(self, tiny_profile, tmp_path):
        table = run_accuracy_table("table3", tiny_profile, cache_dir=tmp_path)
        assert len(table.rows) == 12  # nets 4, 5 x 6 schemes
        rendered = table.render()
        assert "Table 3" in rendered
        assert "L-1_4W8A" in rendered
        # Speedup of the Full row is exactly 1x.
        full_rows = [r for r in table.rows if r.scheme_key == "Full"]
        for row in full_rows:
            assert table.speedup_of(row) == pytest.approx(1.0)

    def test_accuracy_metric_selection(self, tiny_profile, tmp_path):
        table = run_accuracy_table("table3", tiny_profile, cache_dir=tmp_path)
        row = table.rows[0]
        assert table.accuracy_of(row) == row.accuracy
        table5like = AccuracyTable(table_id="x", dataset="d", metric="top5", rows=[row])
        assert table5like.accuracy_of(row) == row.top5

    def test_baseline_missing_network(self):
        table = AccuracyTable(table_id="x", dataset="d", metric="top1")
        with pytest.raises(ConfigurationError):
            table.baseline_throughput(1)


class TestTable6:
    def test_rows_and_pattern(self, tiny_profile):
        rows = run_table6(tiny_profile)
        assert len(rows) == 10  # 6 rows for net 7 + 4 for net 8
        names7 = [r.scheme_name for r in rows if r.network_id == 7]
        assert "Full" in names7 and "FP_4W8A" in names7
        names8 = [r.scheme_name for r in rows if r.network_id == 8]
        assert "Full" not in names8
        rendered = render_table6(rows)
        assert "Available" in rendered

    def test_fl_emulation_gives_lower_k_for_a(self, tiny_profile):
        rows = {(r.network_id, r.scheme_name): r for r in run_table6(tiny_profile)}
        assert rows[(7, "FL_a")].mean_k < rows[(7, "FL_b")].mean_k
        assert rows[(7, "FL_a")].mean_k < 1.5

    def test_percentiles_documented(self):
        assert set(FL_EMULATION_PERCENTILES) == {"FL_a", "FL_b"}


class TestFig4:
    def test_series_structure(self):
        series = run_fig4()
        assert set(series) == {"weight", "first_term", "second_term", "total"}
        assert series["weight"].shape == series["total"].shape

    def test_paper_lambdas_default(self):
        series = run_fig4()
        w = series["weight"]
        np.testing.assert_allclose(series["first_term"], 1e-5 * np.abs(w))

    def test_custom_range(self):
        series = run_fig4(weight_range=(0.0, 1.0), samples=11)
        assert series["weight"].min() == 0.0
        assert series["weight"].max() == 1.0
        assert len(series["weight"]) == 11


class TestFig6:
    def test_structure_tiny(self, tiny_profile, tmp_path):
        result = run_fig6(tiny_profile, cache_dir=tmp_path, width_multipliers=(1.0, 2.0))
        assert len(result.lightnn_points) == 4
        assert len(result.flightnn_points) == 4
        assert all(s > 0 for s, _ in result.lightnn_points)
        # Fronts are subsets of their point sets.
        assert set(result.lightnn_front) <= set(result.lightnn_points)
        rendered = result.render()
        assert "FLightNN" in rendered
