"""Tests for the full-suite reproducer CLI (argument handling only —
the heavy path is exercised by the benchmark suite)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.reproduce import main


class TestReproduceCli:
    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError):
            main(["--profile", "galactic"])

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "--profile" in capsys.readouterr().out
