"""Tests for the ablation-study entry points (tiny settings)."""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.experiments.ablations import (
    AblationPoint,
    ablate_exponent_window,
    ablate_gradual_quantization,
    ablate_regularization_mode,
    ablate_threshold_freeze,
    train_point,
)
from repro.quant.schemes import scheme_lightnn
from repro.train import TrainConfig


@pytest.fixture(scope="module")
def split():
    return generate_synthetic_images(
        SyntheticImageConfig(num_classes=5, image_size=10, train_size=96,
                             test_size=48, noise=0.4, seed=77)
    )


class TestTrainPoint:
    def test_returns_summary(self, split):
        point = train_point(
            "probe", scheme_lightnn(1), split,
            TrainConfig(epochs=2, batch_size=32, lr=3e-3),
            width_scale=0.15,
        )
        assert isinstance(point, AblationPoint)
        assert point.label == "probe"
        assert 0.0 <= point.accuracy <= 100.0
        assert point.mean_filter_k == pytest.approx(1.0)


class TestStudies:
    def test_gradual_quantization_keys(self, split):
        points = ablate_gradual_quantization(split, epochs=3)
        assert set(points) == {"gradual", "immediate"}

    def test_threshold_freeze_keys(self, split):
        points = ablate_threshold_freeze(split, epochs=3)
        assert set(points) == {"frozen", "churning"}

    def test_exponent_window_direction(self, split):
        points = ablate_exponent_window(split, epochs=3)
        assert set(points) == {"wide", "narrow"}
        # At worst a tie at this tiny scale; never a large inversion.
        assert points["wide"].accuracy >= points["narrow"].accuracy - 10.0

    def test_regularization_mode_sparsity_gap(self, split):
        points = ablate_regularization_mode(split, epochs=3)
        assert points["proximal"].mean_filter_k <= points["gradient"].mean_filter_k + 1e-9
