"""Tests for experiment infrastructure (profiles, runner, cache)."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments.common import (
    PROFILES,
    ExperimentProfile,
    ModelResult,
    build_scheme,
    get_profile,
    make_split,
    run_scheme,
)


@pytest.fixture
def tiny_profile():
    """A profile small enough for per-test training."""
    return ExperimentProfile(
        name="tiny",
        size_scale=0.3,
        train_samples=96,
        width_scale=0.15,
        epochs=2,
        batch_size=32,
        lr=3e-3,
        lambda_warmup_epochs=1,
        threshold_freeze_epoch=1,
        threshold_lr_scale=10.0,
        fl_lambdas_a=(0.0, 0.02),
        fl_lambdas_b=(0.0, 0.002),
    )


class TestProfiles:
    def test_registry_names(self):
        assert {"small", "medium", "paper"} <= set(PROFILES)

    def test_get_profile_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert get_profile().name == "small"

    def test_get_profile_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "medium")
        assert get_profile().name == "medium"

    def test_get_profile_unknown(self):
        with pytest.raises(ConfigurationError):
            get_profile("galactic")

    def test_fingerprint_changes_with_fields(self):
        a = PROFILES["small"]
        b = dataclasses.replace(a, epochs=a.epochs + 1)
        assert a.fingerprint() != b.fingerprint()

    def test_train_config_round_trip(self):
        cfg = PROFILES["small"].train_config()
        assert cfg.epochs == PROFILES["small"].epochs
        assert cfg.threshold_freeze_epoch == PROFILES["small"].threshold_freeze_epoch


class TestBuildScheme:
    def test_all_keys(self):
        profile = PROFILES["small"]
        for key, kind in (("Full", "full"), ("L-2", "lightnn"), ("L-1", "lightnn"),
                          ("FP", "fixed"), ("FL_a", "flightnn"), ("FL_b", "flightnn")):
            assert build_scheme(key, profile).kind == kind

    def test_fl_lambdas_from_profile(self):
        profile = PROFILES["small"]
        assert build_scheme("FL_a", profile).lambdas == profile.fl_lambdas_a
        assert build_scheme("FL_b", profile).lambdas == profile.fl_lambdas_b

    def test_unknown_key(self):
        with pytest.raises(ConfigurationError):
            build_scheme("L-3", PROFILES["small"])


class TestMakeSplit:
    def test_known_datasets(self, tiny_profile):
        for key, classes in (("cifar10", 10), ("svhn", 10),
                             ("cifar100", 20), ("imagenet", 20)):
            split = make_split(key, tiny_profile)
            assert split.num_classes == classes
            assert len(split.train) == tiny_profile.train_samples

    def test_unknown_dataset(self, tiny_profile):
        with pytest.raises(ConfigurationError):
            make_split("mnist", tiny_profile)


class TestModelResult:
    def test_round_trip(self):
        result = ModelResult(
            network_id=1, scheme_key="L-1", scheme_name="L-1_4W8A",
            accuracy=80.0, top5=99.0, accuracy_final=78.0,
            storage_mb=0.01, mean_filter_k=1.0,
            throughput=1e4, batch_size=8, fpga_lut=1, fpga_ff=2, fpga_dsp=3,
            fpga_bram=4, fpga_bound_by=("bram",), energy_uj=0.5,
            train_epochs=2, fingerprint="abc",
        )
        again = ModelResult.from_dict(result.as_dict())
        assert again == result

    def test_from_dict_tolerates_missing_new_fields(self):
        d = ModelResult(
            network_id=1, scheme_key="L-1", scheme_name="L-1_4W8A",
            accuracy=80.0, top5=99.0, accuracy_final=78.0,
            storage_mb=0.01, mean_filter_k=1.0,
            throughput=1e4, batch_size=8, fpga_lut=1, fpga_ff=2, fpga_dsp=3,
            fpga_bram=4, fpga_bound_by=("bram",), energy_uj=0.5,
            train_epochs=2, fingerprint="abc",
        ).as_dict()
        del d["accuracy_final"]
        assert ModelResult.from_dict(d).accuracy_final == 80.0


class TestRunScheme:
    def test_trains_and_caches(self, tiny_profile, tmp_path):
        split = make_split("cifar10", tiny_profile)
        first = run_scheme(1, "L-1", split, tiny_profile, cache_dir=tmp_path)
        assert 0.0 <= first.accuracy <= 100.0
        assert first.mean_filter_k == pytest.approx(1.0)
        assert first.throughput > 0
        # Second call hits the cache (identical result, no retraining).
        second = run_scheme(1, "L-1", split, tiny_profile, cache_dir=tmp_path)
        assert second == first
        assert (tmp_path / "tiny" / "net1_L-1.json").exists()

    def test_stale_cache_recomputed(self, tiny_profile, tmp_path):
        split = make_split("cifar10", tiny_profile)
        run_scheme(1, "L-1", split, tiny_profile, cache_dir=tmp_path)
        changed = dataclasses.replace(tiny_profile, epochs=1)
        fresh = run_scheme(1, "L-1", split, changed, cache_dir=tmp_path)
        assert fresh.fingerprint == changed.fingerprint()
        assert fresh.train_epochs == 1

    def test_cache_tag_separates_variants(self, tiny_profile, tmp_path):
        split = make_split("cifar10", tiny_profile)
        run_scheme(1, "L-1", split, tiny_profile, cache_dir=tmp_path,
                   width_scale=0.3, cache_tag="w2")
        assert (tmp_path / "tiny" / "net1_L-1_w2.json").exists()

    def test_flightnn_records_mixed_precision_fields(self, tiny_profile, tmp_path):
        split = make_split("cifar10", tiny_profile)
        result = run_scheme(1, "FL_a", split, tiny_profile, cache_dir=tmp_path)
        assert 0.0 <= result.mean_filter_k <= 2.0
        assert result.energy_uj > 0
