"""Tests for dataset containers and loaders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader, DataSplit
from repro.errors import DataError


def tiny_dataset(n=10, classes=3, rng=None):
    rng = rng or np.random.default_rng(0)
    return ArrayDataset(rng.normal(size=(n, 3, 4, 4)), rng.integers(0, classes, n), classes)


class TestArrayDataset:
    def test_basic_properties(self):
        ds = tiny_dataset(12)
        assert len(ds) == 12
        assert ds.image_shape == (3, 4, 4)

    def test_shape_validation(self):
        with pytest.raises(DataError):
            ArrayDataset(np.zeros((5, 4, 4)), np.zeros(5, dtype=int), 2)
        with pytest.raises(DataError):
            ArrayDataset(np.zeros((5, 3, 4, 4)), np.zeros(4, dtype=int), 2)

    def test_label_range_validation(self):
        with pytest.raises(DataError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.array([0, 1, 5]), 3)
        with pytest.raises(DataError):
            ArrayDataset(np.zeros((2, 1, 2, 2)), np.array([0, -1]), 3)

    def test_num_classes_validation(self):
        with pytest.raises(DataError):
            ArrayDataset(np.zeros((2, 1, 2, 2)), np.zeros(2, dtype=int), 1)

    def test_subset(self):
        ds = tiny_dataset(10)
        sub = ds.subset(np.array([0, 3, 5]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, ds.labels[[0, 3, 5]])


class TestDataSplit:
    def test_mismatched_classes_rejected(self):
        a = tiny_dataset(classes=3)
        b = ArrayDataset(np.zeros((4, 3, 4, 4)), np.zeros(4, dtype=int), 4)
        with pytest.raises(DataError):
            DataSplit(a, b)

    def test_mismatched_shapes_rejected(self):
        a = tiny_dataset()
        b = ArrayDataset(np.zeros((4, 3, 5, 5)), np.zeros(4, dtype=int), 3)
        with pytest.raises(DataError):
            DataSplit(a, b)

    def test_properties(self):
        split = DataSplit(tiny_dataset(8), tiny_dataset(4), name="t")
        assert split.num_classes == 3
        assert split.image_shape == (3, 4, 4)


class TestDataLoader:
    def test_batch_sizes(self):
        loader = DataLoader(tiny_dataset(10), batch_size=4, shuffle=False)
        sizes = [len(y) for _, y in loader]
        assert sizes == [4, 4, 2]
        assert len(loader) == 3

    def test_covers_all_samples_shuffled(self):
        ds = ArrayDataset(
            np.arange(8).reshape(8, 1, 1, 1).astype(float), np.zeros(8, dtype=int), 2
        )
        loader = DataLoader(ds, batch_size=3, shuffle=True, rng=0)
        seen = np.concatenate([x.ravel() for x, _ in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(8))

    def test_deterministic_with_seed(self):
        ds = tiny_dataset(16)
        order1 = [y.tolist() for _, y in DataLoader(ds, 4, shuffle=True, rng=7)]
        order2 = [y.tolist() for _, y in DataLoader(ds, 4, shuffle=True, rng=7)]
        assert order1 == order2

    def test_no_shuffle_preserves_order(self):
        ds = tiny_dataset(6)
        loader = DataLoader(ds, batch_size=6, shuffle=False)
        _, labels = next(iter(loader))
        np.testing.assert_array_equal(labels, ds.labels)

    def test_invalid_batch_size(self):
        with pytest.raises(DataError):
            DataLoader(tiny_dataset(), batch_size=0)
