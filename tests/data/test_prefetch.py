"""Tests for the background-thread prefetching loader (repro.data.prefetch).

The fast path wraps the training DataLoader in a PrefetchLoader; bitwise
parity with eager training only holds if prefetching is *invisible*: same
batches, same order, same shuffle-RNG consumption — with the worker thread
purely hiding latency.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader
from repro.data.prefetch import PrefetchLoader


def _dataset(n=48, num_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.normal(size=(n, 3, 4, 4)), rng.integers(0, num_classes, n), num_classes
    )


def _batches(loader):
    return [(images.copy(), labels.copy()) for images, labels in loader]


class TestTransparency:
    def test_same_batches_same_order(self):
        dataset = _dataset()
        eager = DataLoader(dataset, 8, shuffle=True, rng=np.random.default_rng(7))
        fast = PrefetchLoader(
            DataLoader(dataset, 8, shuffle=True, rng=np.random.default_rng(7))
        )
        try:
            got, want = _batches(fast), _batches(eager)
        finally:
            fast.close()
        assert len(got) == len(want)
        for (gi, gl), (wi, wl) in zip(got, want):
            np.testing.assert_array_equal(gi, wi)
            np.testing.assert_array_equal(gl, wl)

    def test_rng_lockstep_across_epochs(self):
        """Epoch N+1's shuffle depends only on epochs 0..N, prefetched or not."""
        dataset = _dataset()
        rng_e, rng_f = np.random.default_rng(3), np.random.default_rng(3)
        eager = DataLoader(dataset, 8, shuffle=True, rng=rng_e)
        fast = PrefetchLoader(DataLoader(dataset, 8, shuffle=True, rng=rng_f))
        try:
            for _ in range(3):
                want, got = _batches(eager), _batches(fast)
                for (gi, _), (wi, _) in zip(got, want):
                    np.testing.assert_array_equal(gi, wi)
            assert rng_e.bit_generator.state == rng_f.bit_generator.state
        finally:
            fast.close()

    def test_len_matches_wrapped_loader(self):
        loader = DataLoader(_dataset(n=50), 8, shuffle=False)
        fast = PrefetchLoader(loader)
        try:
            assert len(fast) == len(loader) == 7
        finally:
            fast.close()


class TestLifecycle:
    def test_abandoned_epoch_restarts_cleanly(self):
        """Breaking mid-epoch then re-iterating gives a fresh, full epoch."""
        dataset = _dataset()
        fast = PrefetchLoader(
            DataLoader(dataset, 8, shuffle=True, rng=np.random.default_rng(5))
        )
        try:
            it = iter(fast)
            next(it)  # consume one batch, abandon the rest
            second = _batches(fast)
            assert len(second) == 6
        finally:
            fast.close()

    def test_close_is_idempotent_and_reusable_pattern_safe(self):
        fast = PrefetchLoader(DataLoader(_dataset(), 8, shuffle=False))
        list(fast)
        fast.close()
        fast.close()  # no error on double close

    def test_worker_exception_propagates(self):
        class Exploding:
            def __len__(self):
                return 3

            def __iter__(self):
                yield np.zeros((2, 1)), np.zeros(2, dtype=np.int64)
                raise RuntimeError("bad batch")

        fast = PrefetchLoader(Exploding())
        try:
            with pytest.raises(RuntimeError, match="bad batch"):
                _batches(fast)
        finally:
            fast.close()

    def test_worker_actually_runs_ahead(self):
        """The queue hides producer latency: consumption sees ready batches."""
        produced = []

        class Slowish:
            def __len__(self):
                return 4

            def __iter__(self):
                for i in range(4):
                    produced.append(i)
                    yield np.full((1, 1), i), np.zeros(1, dtype=np.int64)

        fast = PrefetchLoader(Slowish(), depth=4)
        try:
            it = iter(fast)
            next(it)
            deadline = time.monotonic() + 2.0
            while len(produced) < 4 and time.monotonic() < deadline:
                time.sleep(0.01)  # worker drains the source ahead of consumption
            assert len(produced) == 4
        finally:
            fast.close()

    def test_depth_validated(self):
        with pytest.raises(ValueError):
            PrefetchLoader(DataLoader(_dataset(), 8), depth=0)
