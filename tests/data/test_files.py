"""Tests for .npz dataset loading/saving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_npz_split, make_cifar10_like, save_npz_split
from repro.errors import DataError


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        split = make_cifar10_like(size_scale=0.25, samples=16)
        path = save_npz_split(split, tmp_path / "data.npz")
        loaded = load_npz_split(path, normalize=False)
        np.testing.assert_allclose(loaded.train.images, split.train.images)
        np.testing.assert_array_equal(loaded.test.labels, split.test.labels)
        assert loaded.num_classes == split.num_classes

    def test_name_from_stem(self, tmp_path):
        split = make_cifar10_like(size_scale=0.25, samples=8)
        path = save_npz_split(split, tmp_path / "mydata.npz")
        assert load_npz_split(path).name == "mydata"


class TestLayouts:
    def _archive(self, tmp_path, train_images):
        path = tmp_path / "d.npz"
        np.savez(path,
                 train_images=train_images,
                 train_labels=np.zeros(len(train_images), dtype=int),
                 test_images=train_images,
                 test_labels=np.zeros(len(train_images), dtype=int))
        return path

    def test_nhwc_transposed(self, tmp_path, rng):
        path = self._archive(tmp_path, rng.normal(size=(4, 8, 8, 3)))
        split = load_npz_split(path, normalize=False)
        assert split.image_shape == (3, 8, 8)

    def test_nchw_kept(self, tmp_path, rng):
        path = self._archive(tmp_path, rng.normal(size=(4, 3, 8, 8)))
        assert load_npz_split(path, normalize=False).image_shape == (3, 8, 8)

    def test_ambiguous_layout_rejected(self, tmp_path, rng):
        path = self._archive(tmp_path, rng.normal(size=(4, 8, 8, 8)))
        with pytest.raises(DataError):
            load_npz_split(path)

    def test_missing_keys_rejected(self, tmp_path, rng):
        path = tmp_path / "bad.npz"
        np.savez(path, train_images=rng.normal(size=(2, 3, 4, 4)))
        with pytest.raises(DataError):
            load_npz_split(path)

    def test_normalization_applied(self, tmp_path, rng):
        path = self._archive(tmp_path, rng.normal(loc=100.0, size=(8, 3, 6, 6)))
        split = load_npz_split(path, normalize=True)
        assert abs(split.train.images.mean()) < 1e-6
