"""Tests for the synthetic task generator and named dataset builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.benchmarks import (
    DATASET_BUILDERS,
    make_cifar10_like,
    make_cifar100_like,
    make_imagenet_like,
    make_svhn_like,
)
from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.data.transforms import normalize_images, random_flip
from repro.errors import DataError


class TestSyntheticConfig:
    def test_validation(self):
        with pytest.raises(DataError):
            SyntheticImageConfig(num_classes=1)
        with pytest.raises(DataError):
            SyntheticImageConfig(noise=-0.1)
        with pytest.raises(DataError):
            SyntheticImageConfig(prototype_grid=100, image_size=16)


class TestGenerator:
    def test_shapes_and_sizes(self):
        cfg = SyntheticImageConfig(num_classes=4, channels=2, image_size=8,
                                   train_size=20, test_size=10, seed=3)
        split = generate_synthetic_images(cfg)
        assert split.train.images.shape == (20, 2, 8, 8)
        assert split.test.images.shape == (10, 2, 8, 8)
        assert split.num_classes == 4

    def test_deterministic(self):
        cfg = SyntheticImageConfig(train_size=16, test_size=8, seed=5)
        a = generate_synthetic_images(cfg)
        b = generate_synthetic_images(cfg)
        np.testing.assert_array_equal(a.train.images, b.train.images)
        np.testing.assert_array_equal(a.test.labels, b.test.labels)

    def test_different_seed_different_task(self):
        a = generate_synthetic_images(SyntheticImageConfig(seed=1, train_size=8, test_size=4))
        b = generate_synthetic_images(SyntheticImageConfig(seed=2, train_size=8, test_size=4))
        assert not np.allclose(a.train.images, b.train.images)

    def test_task_is_learnable_by_nearest_prototype(self):
        """Class structure must be strong enough that a trivial classifier
        beats chance — otherwise accuracy comparisons are meaningless."""
        cfg = SyntheticImageConfig(num_classes=5, train_size=200, test_size=100,
                                   noise=0.5, seed=7)
        split = generate_synthetic_images(cfg)
        # Nearest class-mean classifier fit on train.
        means = np.stack([
            split.train.images[split.train.labels == c].mean(axis=0)
            for c in range(5)
        ]).reshape(5, -1)
        flat = split.test.images.reshape(len(split.test), -1)
        pred = np.argmax(flat @ means.T, axis=1)
        acc = (pred == split.test.labels).mean()
        assert acc > 0.6

    def test_noise_reduces_separability(self):
        def margin(noise):
            cfg = SyntheticImageConfig(num_classes=4, train_size=120, test_size=60,
                                       noise=noise, seed=9)
            split = generate_synthetic_images(cfg)
            means = np.stack([
                split.train.images[split.train.labels == c].mean(axis=0)
                for c in range(4)
            ]).reshape(4, -1)
            flat = split.test.images.reshape(len(split.test), -1)
            pred = np.argmax(flat @ means.T, axis=1)
            return (pred == split.test.labels).mean()

        assert margin(0.1) >= margin(2.5)


class TestNamedBuilders:
    def test_registry_complete(self):
        assert set(DATASET_BUILDERS) == {"cifar10", "svhn", "cifar100", "imagenet"}

    def test_cifar10_like(self):
        split = make_cifar10_like(size_scale=0.25, samples=32)
        assert split.num_classes == 10
        assert split.image_shape[0] == 3
        assert split.name == "cifar10-like"

    def test_svhn_like(self):
        assert make_svhn_like(size_scale=0.25, samples=32).num_classes == 10

    def test_cifar100_like_class_count(self):
        assert make_cifar100_like(size_scale=0.25, samples=32).num_classes == 20
        assert make_cifar100_like(size_scale=0.25, samples=32, num_classes=100).num_classes == 100

    def test_imagenet_like(self):
        split = make_imagenet_like(size_scale=0.25, samples=32)
        assert split.num_classes == 20

    def test_size_scale_changes_resolution(self):
        small = make_cifar10_like(size_scale=0.25, samples=16)
        big = make_cifar10_like(size_scale=1.0, samples=16)
        assert big.image_shape[1] == 32
        assert small.image_shape[1] == 8


class TestTransforms:
    def test_normalize_zero_mean_unit_std(self, rng):
        x = rng.normal(loc=4.0, scale=3.0, size=(10, 3, 5, 5))
        out = normalize_images(x)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-6)

    def test_normalize_rejects_bad_shape(self, rng):
        with pytest.raises(DataError):
            normalize_images(rng.normal(size=(3, 5, 5)))

    def test_random_flip_probability_one(self, rng):
        x = rng.normal(size=(4, 1, 3, 3))
        out = random_flip(x, rng=0, probability=1.0)
        np.testing.assert_array_equal(out, x[:, :, :, ::-1])

    def test_random_flip_probability_zero(self, rng):
        x = rng.normal(size=(4, 1, 3, 3))
        np.testing.assert_array_equal(random_flip(x, rng=0, probability=0.0), x)

    def test_random_flip_invalid_probability(self, rng):
        with pytest.raises(DataError):
            random_flip(rng.normal(size=(1, 1, 2, 2)), probability=1.5)
