"""Engine-level behaviour: evaluation parity with the Trainer, routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset
from repro.infer import InferenceEngine
from repro.train.trainer import Trainer

from tests.infer.conftest import NUM_CLASSES, build_small_network, sample_images


def make_dataset(n, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        sample_images(n, seed=seed), rng.integers(0, NUM_CLASSES, n), NUM_CLASSES
    )


def test_evaluate_matches_eager_trainer_path():
    """engine.evaluate is a drop-in for the eager Trainer.evaluate."""
    model = build_small_network(5)
    dataset = make_dataset(40, seed=2)
    trainer = Trainer(model)
    eager = trainer.evaluate(dataset, use_engine=False)
    engine = InferenceEngine(model).evaluate(dataset)
    assert eager.keys() == engine.keys()
    for key in eager:
        assert engine[key] == pytest.approx(eager[key], abs=1e-9)


def test_trainer_routes_through_engine():
    """Default Trainer.evaluate uses the compiled engine and agrees with the
    eager fallback; the engine is built once and cached on the trainer."""
    model = build_small_network(4)
    dataset = make_dataset(24, seed=3)
    trainer = Trainer(model)
    via_engine = trainer.evaluate(dataset)
    assert trainer._eval_engine is not None
    again = trainer.evaluate(dataset)
    assert via_engine == again
    eager = trainer.evaluate(dataset, use_engine=False)
    for key in eager:
        assert via_engine[key] == pytest.approx(eager[key], abs=1e-9)


def test_eager_evaluate_builds_no_graph():
    """Satellite check: eval passes run under no_grad — logits come back
    with no autograd parents and no gradients accumulate on weights."""
    model = build_small_network(4)
    trainer = Trainer(model)
    trainer.evaluate(make_dataset(8), use_engine=False)
    assert all(p.grad is None for p in model.parameters())


def test_predict_is_argmax_of_logits():
    model = build_small_network(4)
    engine = InferenceEngine(model)
    images = sample_images(10, seed=4)
    np.testing.assert_array_equal(
        engine.predict(images), np.argmax(engine.predict_logits(images), axis=1)
    )


def test_predict_accepts_dataset():
    model = build_small_network(4)
    dataset = make_dataset(12, seed=5)
    engine = InferenceEngine(model)
    np.testing.assert_array_equal(
        engine.predict_logits(dataset), engine.predict_logits(dataset.images)
    )


def test_network_compile_helper():
    model = build_small_network(4)
    engine = model.compile()
    assert isinstance(engine, InferenceEngine)
    assert engine.model is model


def test_forward_batch_returns_scratch_buffer():
    """forward_batch documents that its result is engine-owned scratch."""
    model = build_small_network(4)
    engine = InferenceEngine(model)
    a = engine.forward_batch(sample_images(4, seed=6))
    a_copy = a.copy()
    b = engine.forward_batch(sample_images(4, seed=7))
    assert a is b  # same buffer, overwritten in place
    assert not np.array_equal(a_copy, b)
