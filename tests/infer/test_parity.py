"""Engine vs eager logit parity (the ISSUE's ≤1e-5 bar, met with ~1e-13).

The compiled plan quantizes weights once, folds BN away and runs raw-ndarray
kernels; these tests pin its logits to the eager eval-mode forward across
every Table-1 structure and every quantization scheme.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import InferenceEngine, compile_network, plan_dtype
from repro.infer.plan import AffineOp
from repro.quant.schemes import paper_schemes

from tests.infer.conftest import build_small_network, eager_logits, sample_images

PARITY_ATOL = 1e-5

ALL_CONFIGS = list(range(1, 9))
ALL_SCHEMES = sorted(paper_schemes())


@pytest.mark.parametrize("network_id", ALL_CONFIGS)
def test_parity_all_table1_configs(network_id):
    """FLightNN engine logits match eager forward on every Table-1 config."""
    model = build_small_network(network_id)
    images = sample_images(9, seed=network_id)
    engine = InferenceEngine(model)
    got = engine.predict_logits(images)
    want = eager_logits(model, images)
    assert np.max(np.abs(got - want)) <= PARITY_ATOL


@pytest.mark.parametrize("scheme_key", ALL_SCHEMES)
@pytest.mark.parametrize("network_id", [2, 5])
def test_parity_all_schemes(network_id, scheme_key):
    """Every quantization scheme, on a VGG and a ResNet structure."""
    model = build_small_network(network_id, scheme_key=scheme_key)
    images = sample_images(6, seed=17)
    engine = InferenceEngine(model)
    got = engine.predict_logits(images)
    want = eager_logits(model, images)
    assert np.max(np.abs(got - want)) <= PARITY_ATOL


@pytest.mark.parametrize("network_id", [1, 2])
def test_bn_layers_are_folded(network_id):
    """Parity holds *and* no standalone BN affine survives compilation.

    The conftest randomizes BN affines and running statistics, so an
    incorrect fold cannot hide behind identity-BN defaults.
    """
    model = build_small_network(network_id)
    plan = compile_network(model)
    assert not any(isinstance(op, AffineOp) for op in plan.ops)
    images = sample_images(5, seed=3)
    engine = InferenceEngine(model)
    assert np.max(np.abs(engine.predict_logits(images) - eager_logits(model, images))) <= PARITY_ATOL


def test_parity_is_batch_size_invariant():
    """Internal batch granularity never changes the numbers."""
    model = build_small_network(5)
    images = sample_images(23, seed=5)
    engine = InferenceEngine(model)
    ref = engine.predict_logits(images, batch_size=23)
    for bs in (1, 4, 16, 64):
        np.testing.assert_array_equal(engine.predict_logits(images, batch_size=bs), ref)


def test_float32_deployment_mode():
    """plan_dtype picks float32 only for act-quantized nets; logits stay
    within one activation LSB of the float64 reference."""
    quantized = build_small_network(5, scheme_key="FL_a")
    full = build_small_network(5, scheme_key="Full")
    assert plan_dtype(quantized) == np.float32
    assert plan_dtype(full) == np.float64

    engine32 = InferenceEngine(quantized, dtype=plan_dtype(quantized))
    assert engine32.plan.dtype == np.float32
    images = sample_images(8, seed=11)
    got = engine32.predict_logits(images)
    assert got.dtype == np.float32
    # Rounding-tie flips bound the error at ~one activation LSB, not 1e-5.
    step = paper_schemes()["FL_a"].activation.step
    assert np.max(np.abs(got - eager_logits(quantized, images))) <= 4 * step
