"""Seconds-scale smoke run of the inference benchmark (marker: infer_bench).

Excluded from the default suite by ``pytest.ini``'s ``-m "not infer_bench"``
so tier-1 stays quick; run it with::

    PYTHONPATH=src python -m pytest tests/infer/test_bench_smoke.py -m infer_bench
"""

from __future__ import annotations

import json

import pytest

bench_infer = pytest.importorskip(
    "benchmarks.bench_infer", reason="benchmarks package requires repo root on sys.path"
)


@pytest.mark.infer_bench
def test_benchmark_smoke(tmp_path):
    result = bench_infer.run_benchmark(smoke=True)

    assert result["metadata"]["smoke"] is True
    assert {row["network_id"] for row in result["parity_float64"]} == set(range(1, 9))
    # The engine must agree with eager logits on every config (the full
    # benchmark's acceptance bar), even at smoke scale.
    assert result["summary"]["max_parity_abs_diff"] <= 1e-5
    # The engine should never be slower than eager, even on a tiny workload
    # where fixed costs dominate (the full run shows the real >=3x margin).
    assert result["summary"]["min_single_worker_speedup"] > 1.0

    # Every timed row records its plan's kernel/sparsity metadata.
    for row in result["configs"]:
        plan = row["plan"]
        assert plan["kernels"] and plan["layers"]
        assert plan["pruned_filters"] == 0  # stock nets carry no dead filters

    # Sparsity sweep: the sparsity-aware engine must beat the dense baseline
    # on a ~40%-dead net with exact float64 parity, and record the pruning.
    sweep = result["sparsity_sweep"]
    assert sweep
    for row in sweep:
        assert row["dead_fraction_actual"] >= 0.3
        assert row["plan"]["pruned_filters"] > 0
        assert row["max_abs_diff"] <= 1e-5
    assert result["summary"]["min_sparsity_speedup"] > 1.0
    assert result["summary"]["max_sparsity_parity_abs_diff"] <= 1e-5

    # Fusion sweep: the traced executor must be bitwise-equal to the
    # interpreter and its liveness allocator must beat naive buffering; the
    # speedup itself is asserted only by the full (non-smoke) run, where
    # timing noise is controlled.
    fusion = result["fusion_sweep"]
    assert {row["network_id"] for row in fusion} == {1, 4}
    for row in fusion:
        assert row["bitwise_equal"] is True
        for spec in row["batches"].values():
            prog = spec["program"]
            assert prog["fused_elementwise"] > 0
            assert 0 < prog["peak_intermediate_bytes"] < prog["naive_intermediate_bytes"]
            assert spec["fused_s"] > 0 and spec["untraced_s"] > 0
    assert result["summary"]["fusion"]["all_bitwise_equal"] is True

    out = tmp_path / "BENCH_infer.json"
    out.write_text(json.dumps(result))  # round-trips: everything is plain JSON
    assert json.loads(out.read_text())["configs"]


@pytest.mark.infer_bench
def test_native_sweep_smoke(tmp_path):
    """The --native-sweep section: native C vs numpy codegen timings, bitwise
    parity in both dtypes, and per-layer backend records, at smoke scale
    (net 4).  Passes with or without a host toolchain — without one, every
    layer records numpy and the speedups hover near 1x."""
    sweep = bench_infer.run_native_sweep(reps=1, smoke=True)

    rows = sweep["native_sweep"]
    assert {row["network_id"] for row in rows} == {4}
    for row in rows:
        # Bitwise equality is the acceptance bar regardless of backend.
        assert row["bitwise_equal"]["float64"] is True
        assert row["bitwise_equal"]["int8"] is True
        for spec in row["batches"].values():
            assert spec["numpy_s"] > 0 and spec["native_s"] > 0
            assert spec["int8_numpy_s"] > 0 and spec["int8_native_s"] > 0
        assert row["float64_layers"]  # per-node backend outcome records
        backends = {l.get("backend") for l in row["float64_layers"]}
        assert backends <= {"native", "numpy"}
    summary = sweep["native_summary"]
    assert summary["all_bitwise_equal"] is True
    assert "available" in summary["toolchain"]
    if summary["toolchain"]["available"]:
        assert any(
            l.get("backend") == "native" for r in rows for l in r["float64_layers"]
        )

    out = tmp_path / "BENCH_native.json"
    out.write_text(json.dumps(sweep))  # round-trips: everything is plain JSON
    assert json.loads(out.read_text())["native_sweep"]


@pytest.mark.infer_bench
def test_thread_sweep_smoke(tmp_path):
    """The --thread-sweep section: serial vs tiled threaded kernels, at
    smoke scale (net 4, threads {1, 2}).  Bitwise invariance across counts
    is the acceptance bar; speedups are informational (bounded by the
    host's effective CPUs, which the summary records).  Passes with or
    without a toolchain — without one, every count runs numpy and
    invariance holds trivially."""
    sweep = bench_infer.run_thread_sweep(reps=1, smoke=True)

    rows = sweep["thread_sweep"]
    assert {row["network_id"] for row in rows} == {4}
    for row in rows:
        assert row["bitwise_equal_vs_serial"] is True
        for spec in row["batches"].values():
            for dt in ("float64", "int8"):
                assert spec[dt]["serial_s"] > 0
                assert set(spec[dt]["threads"]) == {"1", "2"}
                for cell in spec[dt]["threads"].values():
                    assert cell["time_s"] > 0
        assert set(row["gemm_choices"]) <= {"blas", "micro"}
    summary = sweep["thread_summary"]
    assert summary["all_bitwise_equal_vs_serial"] is True
    assert summary["effective_cpus"] >= 1
    # A CPU-limited host must say so instead of claiming scaling headroom.
    if summary["effective_cpus"] < 2:
        assert summary["cpu_limited"] is True and summary["cpu_limit_note"]

    out = tmp_path / "BENCH_threads.json"
    out.write_text(json.dumps(sweep))  # round-trips: everything is plain JSON
    assert json.loads(out.read_text())["thread_sweep"]


@pytest.mark.infer_bench
def test_int_sweep_smoke(tmp_path):
    """The --int-sweep section: int8 parity, determinism and measured op
    counts, at smoke scale (nets 1 and 4)."""
    sweep = bench_infer.run_int_sweep(reps=1, smoke=True)

    rows = sweep["int_sweep"]
    assert {row["network_id"] for row in rows} == {1, 4}
    for row in rows:
        assert row["argmax_agreement"] >= 0.99
        assert row["deterministic"] is True
        assert set(row["accum_dtypes"]) <= {"int32", "int64"}
        totals = row["totals_per_image"]
        assert totals["shift_ops"] > 0 and totals["requant_mult_ops"] > 0
    summary = sweep["int_summary"]
    assert summary["min_argmax_agreement"] >= 0.99
    assert summary["all_deterministic"] is True

    out = tmp_path / "BENCH_int.json"
    out.write_text(json.dumps(sweep))  # round-trips: everything is plain JSON
    assert json.loads(out.read_text())["int_sweep"]
