"""Tests for the compiled inference engine (repro.infer)."""
