"""Engine thread-safety: the contracts the serving layer builds on.

Covers the PR's engine-hardening satellite: serialized stale-check/refresh,
re-entrant ``predict_logits``, and the one-``ExecutionContext``-per-worker
rule for ``forward_batch``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.infer import InferenceEngine
from repro.quant.qlayers import QConv2d

from tests.infer.conftest import build_small_network, sample_images


def test_predict_logits_reentrant_across_threads():
    """Concurrent predict_logits calls on one engine must all be exact —
    each call borrows a private scratch context from the pool."""
    model = build_small_network(4)
    engine = InferenceEngine(model)
    images = sample_images(24, seed=50)
    serial = engine.predict_logits(images, batch_size=5)

    outputs: "dict[int, np.ndarray]" = {}
    errors: "list[Exception]" = []
    barrier = threading.Barrier(6)

    def run(tid: int):
        try:
            barrier.wait()
            for _ in range(3):
                outputs[tid] = engine.predict_logits(images, batch_size=5)
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(t,)) for t in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not errors, errors
    for tid, out in outputs.items():
        np.testing.assert_array_equal(out, serial, err_msg=f"thread {tid} diverged")


def test_forward_batch_with_private_contexts():
    """Workers following the one-context-per-thread contract get exact rows."""
    model = build_small_network(4)
    engine = InferenceEngine(model)
    images = sample_images(12, seed=51)
    serial = engine.predict_logits(images, batch_size=4)

    results: "dict[int, np.ndarray]" = {}
    errors: "list[Exception]" = []

    def run(worker: int, lo: int, hi: int):
        try:
            ctx = engine.make_context()
            for _ in range(4):
                out = np.array(engine.forward_batch(images[lo:hi], ctx=ctx), copy=True)
            results[worker] = out
        except Exception as exc:  # pragma: no cover - failure diagnostics
            errors.append(exc)

    spans = [(0, 4), (4, 8), (8, 12)]
    threads = [threading.Thread(target=run, args=(w, lo, hi)) for w, (lo, hi) in enumerate(spans)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not errors, errors
    for worker, (lo, hi) in enumerate(spans):
        np.testing.assert_array_equal(results[worker], serial[lo:hi])


def test_concurrent_stale_check_refreshes_once():
    """Racing stale checks must rebuild each stale op exactly once overall
    (the refresh lock serializes check-and-rebuild)."""
    model = build_small_network(4)
    engine = InferenceEngine(model)
    engine.predict_logits(sample_images(2))  # warm

    layer = next(m for m in model.modules() if isinstance(m, QConv2d))
    layer.weight.data[...] += 0.25
    layer.weight.bump_version()

    rebuilt_counts: "list[int]" = []
    barrier = threading.Barrier(8)

    def check():
        barrier.wait()
        rebuilt_counts.append(engine.check_stale())

    threads = [threading.Thread(target=check) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(30)
    # One thread wins the race and rebuilds; everyone else sees fresh ops.
    assert sum(rebuilt_counts) >= 1
    assert sum(1 for c in rebuilt_counts if c > 0) == 1
    assert engine.plan.stale_bindings() == []
