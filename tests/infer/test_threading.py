"""Intra-op threaded native runtime: bitwise invariance and pool hygiene.

The acceptance bar from the issue: ``PlanConfig(threads=N)`` must produce
**bitwise identical** engine outputs for every thread count in {1, 2, 4} —
across all 8 Table-1 configs, both kernels (dense / shift_plane) and both
compute dtypes (float64 / int8) — plus repeated-run determinism, a clean
pool restart after ``fork``, and graceful single-thread fallback when the
pool cannot start.

On a toolchain-free host the threaded binds decline and every thread count
runs the numpy codegen — the invariance assertions still hold trivially,
while the "threaded kernels actually executed" assertions are gated on the
runtime being available.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.infer import InferenceEngine, PlanConfig
from repro.infer.native import binding
from repro.infer.native.threading import runtime

from tests.infer.conftest import build_small_network, sample_images

ALL_CONFIGS = tuple(range(1, 9))
KERNELS = ("dense", "shift_plane")
THREAD_COUNTS = (1, 2, 4)

MT_OK = binding.available() and runtime.available()
needs_runtime = pytest.mark.skipif(
    not MT_OK, reason="no threaded native runtime on this host"
)


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Byte-level equality (``==`` would let ``-0.0 == 0.0`` hide a drift)."""
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


def _mt_nodes(engine) -> int:
    """Traced nodes that bound a threaded kernel (record carries "threads")."""
    total = 0
    for prog in engine.plan._traced.values():
        total += sum(1 for rec in prog.node_backends.values() if "threads" in rec)
    return total


# -- engine-level bitwise invariance ------------------------------------------


class TestThreadCountInvariance:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_float64(self, network_id, kernel):
        """threads=1/2/4 and the legacy serial path agree byte-for-byte."""
        model = build_small_network(network_id)
        images = sample_images(5, seed=network_id)
        serial = InferenceEngine(
            model, config=PlanConfig(kernel=kernel)
        ).predict_logits(images)
        outs = {}
        for t in THREAD_COUNTS:
            engine = InferenceEngine(model, config=PlanConfig(kernel=kernel, threads=t))
            outs[t] = engine.predict_logits(images)
            assert _bitwise_equal(outs[t], serial), f"threads={t} drifted from serial"
            if MT_OK and t == THREAD_COUNTS[-1]:
                assert _mt_nodes(engine) > 0
        assert _bitwise_equal(outs[1], outs[2])
        assert _bitwise_equal(outs[1], outs[4])

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_int8(self, network_id, kernel):
        """The integer program's threaded kernels are exact: same bits."""
        model = build_small_network(network_id)
        images = sample_images(4, seed=network_id)
        serial = InferenceEngine(
            model, config=PlanConfig(dtype="int8", kernel=kernel)
        ).predict_logits(images)
        outs = {
            t: InferenceEngine(
                model, config=PlanConfig(dtype="int8", kernel=kernel, threads=t)
            ).predict_logits(images)
            for t in THREAD_COUNTS
        }
        for t in THREAD_COUNTS:
            assert _bitwise_equal(outs[t], serial), f"threads={t} drifted from serial"

    def test_repeated_runs_share_one_digest(self):
        """Same engine, same batch, many runs: a single output digest."""
        model = build_small_network(4)
        images = sample_images(8, seed=7)
        engine = InferenceEngine(model, config=PlanConfig(threads=2))
        digests = {engine.predict_logits(images).tobytes() for _ in range(5)}
        assert len(digests) == 1

    def test_batch_size_does_not_change_threaded_bits(self):
        """Per-shape rebinding at any batch size keeps the same bytes."""
        model = build_small_network(4)
        images = sample_images(16, seed=2)
        engine = InferenceEngine(model, config=PlanConfig(threads=2))
        ref = engine.predict_logits(images, batch_size=16)
        for bs in (1, 3, 16):
            assert _bitwise_equal(engine.predict_logits(images, batch_size=bs), ref)


# -- PlanConfig / resolution semantics ----------------------------------------


class TestThreadsConfig:
    def test_default_is_auto_and_resolves_serial_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert PlanConfig().threads == "auto"
        assert runtime.resolve_threads("auto") == 0

    def test_auto_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert runtime.resolve_threads("auto") == 3
        monkeypatch.setenv("REPRO_NUM_THREADS", "1")  # < 2 keeps legacy kernels
        assert runtime.resolve_threads("auto") == 0
        monkeypatch.setenv("REPRO_NUM_THREADS", "banana")
        assert runtime.resolve_threads("auto") == 0

    def test_explicit_counts(self):
        assert runtime.resolve_threads(1) == 1
        assert runtime.resolve_threads(4) == 4
        with pytest.raises(ValueError):
            runtime.resolve_threads(0)
        with pytest.raises(ValueError):
            runtime.resolve_threads(-2)

    @pytest.mark.parametrize("bad", (0, -1, "two", 1.5, True))
    def test_config_rejects_bad_values(self, bad):
        with pytest.raises(ConfigurationError):
            PlanConfig(threads=bad)

    def test_plan_records_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        from repro.infer.plan import compile_network

        model = build_small_network(4)
        plan = compile_network(model, config=PlanConfig(threads=2))
        assert plan.intra_threads == 2
        summary = plan.summary()
        assert summary["intra_threads"] == 2
        assert summary["config"]["threads"] == 2
        default = compile_network(model, config=PlanConfig())
        assert default.intra_threads == 0


# -- runtime unit behavior ----------------------------------------------------


@needs_runtime
class TestRuntime:
    def test_pool_grows_and_clamps(self):
        # The pool only ever grows (earlier binds may have sized it already)
        # and thread creation may fail — so the contract is: the returned
        # live count matches pool_size() and respects the hard cap.
        n = runtime.ensure_pool(2)
        assert n == runtime.pool_size()
        assert 0 <= n <= runtime.MAX_WORKERS
        assert runtime.ensure_pool(runtime.MAX_WORKERS + 50) <= runtime.MAX_WORKERS

    def test_stats_shape(self):
        runtime.ensure_pool(1)
        st = runtime.stats(initialize=True)
        assert st["available"] is True
        assert st["tiles_total"] == st["tiles_caller"] + st["tiles_stolen"]
        assert 0.0 <= st["steal_fraction"] <= 1.0

    def test_stats_does_not_force_compile(self):
        # A fresh block must always be dict-shaped with "available"; the
        # non-forcing default is what summary()/metrics call.
        st = runtime.stats()
        assert isinstance(st, dict) and "available" in st

    def test_shutdown_and_restart(self):
        runtime.ensure_pool(2)
        runtime.shutdown()
        assert runtime.pool_size() == 0
        # A dead pool is not an error: the next threaded engine call runs
        # caller-inline over the same tiles (bitwise identical), and the
        # pool can be restarted at will.
        model = build_small_network(4)
        images = sample_images(4, seed=3)
        engine = InferenceEngine(model, config=PlanConfig(threads=2))
        serial = InferenceEngine(model).predict_logits(images)
        assert _bitwise_equal(engine.predict_logits(images), serial)


# -- fork hygiene -------------------------------------------------------------


@needs_runtime
@pytest.mark.skipif(not hasattr(os, "fork"), reason="no fork on this platform")
class TestForkHygiene:
    def test_child_after_fork_recomputes_identical_bits(self):
        """A forked child inherits no pthreads; its pool state must reset
        and threaded plans must still produce the parent's exact bytes."""
        model = build_small_network(4)
        images = sample_images(6, seed=11)
        engine = InferenceEngine(model, config=PlanConfig(threads=2))
        parent_out = engine.predict_logits(images).copy()
        assert runtime.ensure_pool(1) >= 0  # pool (maybe) live before fork

        r, w = os.pipe()
        pid = os.fork()
        if pid == 0:  # child
            status = 1
            try:
                assert runtime.pool_size() == 0  # after_in_child hook ran
                child_out = engine.predict_logits(images)
                ok = _bitwise_equal(child_out, parent_out)
                os.write(w, b"1" if ok else b"0")
                status = 0 if ok else 2
            finally:
                os.close(w)
                os._exit(status)
        os.close(w)
        try:
            flag = os.read(r, 1)
            _, wait_status = os.waitpid(pid, 0)
        finally:
            os.close(r)
        assert flag == b"1"
        assert os.waitstatus_to_exitcode(wait_status) == 0
        # Parent's pool and outputs are unaffected by the child's lifecycle.
        assert _bitwise_equal(engine.predict_logits(images), parent_out)


# -- pool over-sharding guard -------------------------------------------------


class TestShardingInteraction:
    def test_run_sharded_clamps_workers_under_intra_threads(self, monkeypatch):
        from repro.infer import pool as shard_pool

        captured = {}

        def fake_runner(plan, images, slices, workers):
            captured["workers"] = workers
            for i, s in enumerate(slices):
                yield i, np.zeros((s.stop - s.start, 2))

        monkeypatch.setattr(shard_pool, "_run_threaded", fake_runner)
        monkeypatch.setattr(
            "repro.utils.cpu.effective_cpus", lambda: 4
        )

        class FakePlan:
            intra_threads = 2

        shard_pool.run_sharded(FakePlan(), np.zeros((8, 1)), 2, workers=8)
        assert captured["workers"] == 2  # 4 cpus // 2 intra threads

        FakePlan.intra_threads = 0  # legacy serial kernels: no clamping
        shard_pool.run_sharded(FakePlan(), np.zeros((8, 1)), 2, workers=8)
        assert captured["workers"] == 8
