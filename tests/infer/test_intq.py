"""Integer-only execution mode (``PlanConfig(dtype="int8")``).

The acceptance bar for the subsystem: every Table-1 structure runs
end-to-end in integer arithmetic with >= 99% top-1 agreement against the
float64 engine, bitwise-deterministic repeated runs, integer accumulators
throughout, and measured shift/add/requant op counts flowing through the
plan summary into :func:`repro.hw.intq_measured_ops` and ``/metrics``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CompileError, HardwareModelError
from repro.hw import intq_measured_ops
from repro.infer import InferenceEngine, PlanConfig, build_intq_program, compile_network
from repro.infer.intq.build import IntConvOp, IntDequantizeOp, IntLinearOp, IntQuantizeOp
from repro.infer.intq.requant import quantize_multiplier, rounding_right_shift
from repro.testing import run_intq_parity

from tests.infer.conftest import build_small_network, sample_images

INT8 = PlanConfig(dtype="int8")
ALL_CONFIGS = tuple(range(1, 9))


class TestParity:
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_all_table1_structures(self, network_id):
        """Argmax agreement >= 99%, bitwise-deterministic, integer accums."""
        record = run_intq_parity((network_id,), batch=8)[0]
        assert record["argmax_agreement"] >= 0.99
        assert record["deterministic"]
        assert record["max_abs_delta"] < 0.5
        assert set(record["accum_dtypes"]) <= {"int32", "int64"}
        assert record["shift_ops"] > 0

    def test_kernel_variants_bitwise_equal(self):
        """The gemm and shift-plane integer kernels realise the same
        arithmetic: forcing either must give bit-identical logits."""
        model = build_small_network(4)
        images = sample_images(6, seed=11)
        gemm = InferenceEngine(
            model, config=PlanConfig(dtype="int8", kernel="dense")
        ).predict_logits(images)
        shift = InferenceEngine(
            model, config=PlanConfig(dtype="int8", kernel="shift_plane")
        ).predict_logits(images)
        np.testing.assert_array_equal(gemm, shift)

    def test_repeated_engine_builds_identical(self):
        """Two independently compiled int8 engines agree bitwise (the
        calibration pass and autotuner must be deterministic)."""
        images = sample_images(4, seed=3)
        a = InferenceEngine(build_small_network(5), config=INT8).predict_logits(images)
        b = InferenceEngine(build_small_network(5), config=INT8).predict_logits(images)
        np.testing.assert_array_equal(a, b)


class TestIntegerExecution:
    def test_weights_and_accumulators_are_integer(self):
        """No float arrays in any conv/linear inner loop: packed weights,
        shift planes and requant constants are all integer-typed."""
        engine = InferenceEngine(build_small_network(4), config=INT8)
        matmul_ops = [
            op
            for op in engine.plan.intq.ops
            if isinstance(op, (IntConvOp, IntLinearOp))
        ]
        assert matmul_ops
        for op in matmul_ops:
            assert np.issubdtype(np.dtype(op.acc_dtype), np.integer)
            for name, const in op.consts.items():
                assert np.issubdtype(const.dtype, np.integer), (
                    f"{type(op).__name__} const {name} is {const.dtype}"
                )

    def test_program_brackets_float_boundary(self):
        """The program quantizes at the input and dequantizes exactly once,
        at the output — everything between is integer."""
        engine = InferenceEngine(build_small_network(1), config=INT8)
        ops = engine.plan.intq.ops
        assert isinstance(ops[0], IntQuantizeOp)
        assert isinstance(ops[-1], IntDequantizeOp)
        assert not any(isinstance(op, IntDequantizeOp) for op in ops[:-1])

    def test_full_precision_scheme_rejected(self):
        """Float weights are not sums of powers of two; lowering must fail
        loudly instead of silently falling back to float math."""
        model = build_small_network(4, scheme_key="Full")
        with pytest.raises(CompileError):
            InferenceEngine(model, config=INT8)

    def test_build_requires_calibration_input(self):
        model = build_small_network(4)
        plan = compile_network(model)
        with pytest.raises(CompileError):
            build_intq_program(plan)

    def test_input_shape_validated(self):
        engine = InferenceEngine(build_small_network(4), config=INT8)
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            engine.predict_logits(np.zeros((2, 3, 8, 8)))


class TestRequantPrimitives:
    def test_rounding_right_shift_half_up(self):
        x = np.array([5, -5, 6, -6, 7], dtype=np.int64)
        np.testing.assert_array_equal(
            rounding_right_shift(x, 2), np.array([1, -1, 2, -1, 2])
        )

    def test_quantize_multiplier_reconstructs(self):
        for m in (0.5, 1.0, 1.7e-3, 123.456, 2.0**-20):
            m0, shift = quantize_multiplier(m, bits=24)
            assert abs(m0 / 2.0**shift - m) <= abs(m) * 2.0**-22

    def test_quantize_multiplier_rejects_nonfinite(self):
        with pytest.raises(CompileError):
            quantize_multiplier(float("nan"))


class TestSummaryAndMetrics:
    def test_summary_reports_compute_dtype(self):
        model = build_small_network(4)
        float_summary = InferenceEngine(model).plan_summary()
        assert float_summary["compute_dtype"] == "float64"
        assert float_summary["intq"] == {"enabled": False}

        int_summary = InferenceEngine(model, config=INT8).plan_summary()
        assert int_summary["compute_dtype"] == "int8"
        assert int_summary["config"]["dtype"] == "int8"
        block = int_summary["intq"]
        assert block["enabled"] is True
        totals = block["totals_per_image"]
        for key in ("shift_ops", "add_ops", "int_mult_ops", "requant_mult_ops"):
            assert totals[key] >= 0
        assert totals["add_ops"] > 0
        for layer in block["layers"]:
            assert layer["accum_dtype"] in ("int32", "int64")
            assert 8 <= layer["requant_bits"] <= 24
            assert layer["zero_point"] == 0
            assert layer["scale_out"] > 0

    def test_hw_measured_ops(self):
        engine = InferenceEngine(build_small_network(4), config=INT8)
        measured = intq_measured_ops(engine.plan_summary())
        assert measured["totals_per_image"]["shift_ops"] > 0
        assert measured["mean_planes"] > 0
        assert len(measured["layers"]) == len(
            engine.plan_summary()["intq"]["layers"]
        )

    def test_hw_measured_ops_rejects_float_summary(self):
        engine = InferenceEngine(build_small_network(4))
        with pytest.raises(HardwareModelError):
            intq_measured_ops(engine.plan_summary())

    def test_metrics_snapshot_carries_intq_block(self):
        """/metrics exposes the integer program's op counts."""
        from repro.serve import ModelRegistry

        registry = ModelRegistry()
        registry.register(
            "net4-int8",
            engine=InferenceEngine(build_small_network(4), config=INT8),
        )
        plan = registry.metrics_snapshot()["net4-int8"]["plan"]
        assert plan["compute_dtype"] == "int8"
        assert plan["intq"]["enabled"] is True
        assert plan["intq"]["totals_per_image"]["shift_ops"] > 0


class TestRefresh:
    def test_weight_mutation_rebuilds_packed_state(self):
        """Hot weight refresh must invalidate packed weights and requant
        constants — serving stale integer state would be silent corruption."""
        model = build_small_network(4)
        engine = InferenceEngine(model, config=INT8)
        images = sample_images(6, seed=21)
        before = engine.predict_logits(images)

        rng = np.random.default_rng(99)
        for layer in model.modules():
            if hasattr(layer, "weight") and getattr(layer, "weight", None) is not None:
                layer.weight.data[...] += rng.normal(0.0, 0.05, layer.weight.data.shape)
        assert engine.refresh() > 0

        after = engine.predict_logits(images)
        assert not np.array_equal(after, before)  # new weights took effect
        ref = InferenceEngine(model).predict_logits(images)
        agreement = (after.argmax(axis=1) == ref.argmax(axis=1)).mean()
        assert agreement >= 0.99
        np.testing.assert_array_equal(after, engine.predict_logits(images))


class TestSharding:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_sharded_matches_serial(self, backend):
        """Batch sharding runs the integer program in every worker — row-for-
        row identical to the serial integer path."""
        model = build_small_network(4)
        engine = InferenceEngine(model, config=INT8)
        images = sample_images(14, seed=31)
        serial = engine.predict_logits(images, batch_size=5, workers=1)
        sharded = engine.predict_logits(
            images, batch_size=5, workers=3, backend=backend
        )
        np.testing.assert_array_equal(sharded, serial)
