"""Sparsity-aware inference: pruning, shift-plane kernels, autotuning, refresh.

These tests sparsify real FLightNN layers through threshold surgery
(:func:`~repro.quant.sparsify.sparsify_model`), so every dead filter is a
legitimate ``k_i = 0`` quantizer outcome — then pin the pruned /
shift-plane engine's logits to the eager eval-mode forward at the repo's
parity bar across every Table-1 config, every forced kernel and the
structural-refresh edge cases from the ISSUE.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CompileError, ConfigurationError
from repro.infer import InferenceEngine, PlanConfig, compile_network, supports_shift_planes
from repro.infer.plan import ConvOp, LinearOp
from repro.models.registry import build_network
from repro.quant.schemes import scheme_flightnn
from repro.quant.sparsify import dead_filter_fraction, sparsify_model

from tests.infer.conftest import (
    IMAGE_SIZE,
    NUM_CLASSES,
    WIDTH_SCALE,
    build_small_network,
    eager_logits,
    randomize_bn_stats,
    sample_images,
)

PARITY_ATOL = 1e-5

ALL_CONFIGS = list(range(1, 9))
KERNELS = ("auto", "dense", "shift_plane")


def sparsified_network(network_id: int, dead_fraction: float = 0.4, **kwargs):
    model = build_small_network(network_id, **kwargs)
    sparsify_model(model, dead_fraction)
    return model


class TestSparsifiedParity:
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_parity_all_table1_configs(self, network_id):
        """Pruned + autotuned engine matches eager on every Table-1 config
        at 40% dead filters."""
        model = sparsified_network(network_id)
        images = sample_images(7, seed=network_id)
        got = InferenceEngine(model).predict_logits(images)
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("network_id", [2, 5])
    def test_parity_forced_kernels(self, network_id, kernel):
        """Each kernel implementation is exact on a VGG and a ResNet."""
        model = sparsified_network(network_id)
        images = sample_images(6, seed=31)
        engine = InferenceEngine(model, config=PlanConfig(kernel=kernel))
        got = engine.predict_logits(images)
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL

    def test_pruning_actually_removes_filters(self):
        model = sparsified_network(4, dead_fraction=0.5)
        plan = compile_network(model)
        summary = plan.summary()
        assert plan.pruned
        assert summary["pruned_filters_total"] > 0
        assert summary["config"]["prune"] is True
        # Pruned rows really left the GEMMs: every conv/linear op is narrower
        # than (or equal to) its layer's built filter count.
        assert any(entry["pruned_filters"] > 0 for entry in summary["layers"])

    def test_dense_baseline_config_disables_pruning(self):
        model = sparsified_network(4, dead_fraction=0.5)
        plan = compile_network(model, config=PlanConfig(prune=False, kernel="dense"))
        summary = plan.summary()
        assert not plan.pruned
        assert summary["pruned_filters_total"] == 0
        assert set(summary["kernels"]) == {"dense"}


class TestEdgeCases:
    def test_zero_dead_filters_is_a_no_op(self):
        """A net with no dead filters compiles to the same op count, stays
        unpruned and keeps every kernel dense under the auto policy."""
        model = build_small_network(4)
        assert dead_filter_fraction(model) == 0.0
        plan = compile_network(model)
        dense = compile_network(model, config=PlanConfig(prune=False, kernel="dense"))
        assert len(plan.ops) == len(dense.ops)
        assert not plan.pruned
        assert set(plan.summary()["kernels"]) == {"dense"}

    def test_all_filters_dead_keep_policy(self):
        """all_dead='keep' leaves fully-dead layers as constant layers,
        records the block reason, and preserves exact parity."""
        model = sparsified_network(4, dead_fraction=1.0)
        plan = compile_network(model)  # default all_dead="keep"
        blocked = [e for e in plan.layer_info if "all filters dead" in e.get("blocked", "")]
        assert blocked
        images = sample_images(5, seed=41)
        got = InferenceEngine(model).predict_logits(images)
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL

    def test_all_filters_dead_error_policy(self):
        model = sparsified_network(4, dead_fraction=1.0)
        with pytest.raises(CompileError, match="dead"):
            compile_network(model, config=PlanConfig(all_dead="error"))

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_kmax1_binary_scheme(self, kernel):
        """k_max=1 FLightNN: every filter is either dead or a single shift
        plane; all kernels stay exact."""
        scheme = scheme_flightnn((1e-5,), k_max=1, label="FL_bin")
        model = build_network(
            4,
            scheme,
            num_classes=NUM_CLASSES,
            image_size=IMAGE_SIZE,
            width_scale=WIDTH_SCALE[4],
            rng=0,
        )
        randomize_bn_stats(model, np.random.default_rng(1))
        model.eval()
        sparsify_model(model, 0.4)
        for layer in model.conv_layers():
            assert int(layer.filter_k().max()) <= 1
        images = sample_images(6, seed=43)
        engine = InferenceEngine(model, config=PlanConfig(kernel=kernel))
        got = engine.predict_logits(images)
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL

    def test_sparsify_model_validation(self):
        model = build_small_network(4)
        with pytest.raises(ConfigurationError):
            sparsify_model(model, -0.1)
        with pytest.raises(ConfigurationError):
            sparsify_model(model, 1.5)
        full = build_small_network(4, scheme_key="Full")
        with pytest.raises(ConfigurationError, match="FLightNN"):
            sparsify_model(full, 0.5)

    def test_plan_config_validation(self):
        with pytest.raises(ConfigurationError):
            PlanConfig(kernel="simd")
        with pytest.raises(ConfigurationError):
            PlanConfig(all_dead="whatever")


class TestShiftPlanes:
    @pytest.mark.parametrize("scheme_key, planes", [("L-1", 1), ("L-2", 2)])
    def test_lightnn_schemes_decompose(self, scheme_key, planes):
        """LightNN-k layers decompose into exactly k shift planes and the
        forced shift-plane kernel stays exact."""
        model = build_small_network(2, scheme_key=scheme_key)
        assert all(supports_shift_planes(lay) for lay in model.conv_layers())
        plan = compile_network(model, config=PlanConfig(kernel="shift_plane"))
        shifted = [op for op in plan.ops if getattr(op, "impl", "dense") == "shift_plane"]
        assert shifted
        assert all(op.shift.k_max == planes for op in shifted)
        images = sample_images(6, seed=47)
        got = InferenceEngine(model, config=PlanConfig(kernel="shift_plane")).predict_logits(
            images
        )
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL

    def test_forced_shift_plane_covers_conv_and_linear(self):
        model = sparsified_network(4)
        plan = compile_network(model, config=PlanConfig(kernel="shift_plane"))
        impls = {type(op).__name__: op.impl for op in plan.ops if isinstance(op, (ConvOp, LinearOp))}
        assert impls.get("ConvOp") == "shift_plane"
        assert impls.get("LinearOp") == "shift_plane"

    def test_autotune_reports_timings_for_candidates(self):
        """ResNet conv2s (blocked by the residual add) keep dead rows, so the
        auto policy times dense vs shift-plane and records the choice."""
        model = sparsified_network(7, dead_fraction=0.5)
        plan = compile_network(model)  # kernel="auto"
        tuned = [e for e in plan.layer_info if "autotune" in e]
        assert tuned
        for entry in tuned:
            report = entry["autotune"]
            assert report["chosen"] in ("dense", "shift_plane")
            assert report["dense_s"] > 0.0 and report["shift_plane_s"] > 0.0
            assert entry["kernel"] == report["chosen"]


class TestStructuralRefresh:
    def test_refresh_rebuilds_on_k_histogram_change(self):
        """The ISSUE's hot-refresh regression: re-sparsifying to a different
        k histogram must rebuild the pruned plan, not re-quantize into the
        old channel layout."""
        model = build_small_network(4)
        sparsify_model(model, 0.3)
        engine = InferenceEngine(model, on_stale="refresh")
        images = sample_images(6, seed=53)
        engine.predict_logits(images)
        old_plan = engine.plan
        old_pruned = engine.plan_summary()["pruned_filters_total"]

        sparsify_model(model, 0.6)  # different k histogram / channel layout
        got = engine.predict_logits(images)
        assert engine.plan is not old_plan  # structural rebuild, not a patch
        assert engine.plan_summary()["pruned_filters_total"] > old_pruned
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL

    def test_value_only_mutation_refreshes_in_place(self):
        """Unpruned plans keep the cheap in-place refresh path."""
        model = build_small_network(4)
        engine = InferenceEngine(model, on_stale="refresh")
        images = sample_images(5, seed=59)
        before = engine.predict_logits(images)
        plan = engine.plan

        # Doubling shifts every surviving weight's exponent by one: the
        # quantized values change but no filter norm drops below its gate,
        # so the dead-row structure is untouched.
        layer = model.conv_layers()[0]
        layer.weight.data[...] *= 2.0
        layer.weight.bump_version()
        after = engine.predict_logits(images)
        assert engine.plan is plan  # same structure: patched, not rebuilt
        assert not np.array_equal(before, after)
        assert np.max(np.abs(after - eager_logits(model, images))) <= PARITY_ATOL

    def test_raw_threshold_mutation_caught_by_fingerprint(self):
        """Threshold .data edits without a version bump change the quantized
        structure; engine.refresh() must fingerprint and rebuild."""
        model = build_small_network(4)
        sparsify_model(model, 0.3)
        engine = InferenceEngine(model, on_stale="refresh")
        images = sample_images(5, seed=61)
        engine.predict_logits(images)

        # Kill one layer outright, bypassing bump_version().
        model.conv_layers()[1].thresholds.data[...] = 1e9
        assert engine.refresh() > 0
        got = engine.predict_logits(images)
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL
