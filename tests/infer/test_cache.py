"""Quantized-weight cache invalidation: stale plans must never serve silently.

Covers the two mutation channels the plan's bindings watch:

* version-counter bumps (optimizer steps, ``load_state_dict`` — anything
  going through repo code paths), caught by the cheap key check;
* raw in-place ``.data`` edits that bypass the counters, caught by the
  content fingerprint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, StalePlanError
from repro.infer import InferenceEngine

from tests.infer.conftest import build_small_network, eager_logits, sample_images


def _mutate_raw(model, delta=0.25):
    """In-place master-weight edit that does NOT bump the version counter."""
    layer = model.conv_layers()[0]
    layer.weight.data[...] += delta
    return layer


def _mutate_versioned(model, delta=0.25):
    """Master-weight edit through the documented bump-version protocol."""
    layer = _mutate_raw(model, delta)
    layer.weight.bump_version()
    return layer


def test_error_policy_refuses_stale_results():
    model = build_small_network(4)
    engine = InferenceEngine(model, on_stale="error")
    images = sample_images(4)
    engine.predict_logits(images)  # fresh: fine
    _mutate_versioned(model)
    with pytest.raises(StalePlanError):
        engine.predict_logits(images)


def test_error_policy_catches_raw_data_mutation():
    """Even a .data edit that never bumped a version cannot be served."""
    model = build_small_network(4)
    engine = InferenceEngine(model, on_stale="error")
    _mutate_raw(model)
    with pytest.raises(StalePlanError):
        engine.predict_logits(sample_images(4))


@pytest.mark.parametrize("mutate", [_mutate_raw, _mutate_versioned])
def test_refresh_policy_requantizes_transparently(mutate):
    model = build_small_network(4)
    engine = InferenceEngine(model, on_stale="refresh")
    images = sample_images(6)
    before = engine.predict_logits(images).copy()
    mutate(model)
    after = engine.predict_logits(images)
    assert np.max(np.abs(before - after)) > 0  # the mutation was material
    np.testing.assert_allclose(after, eager_logits(model, images), atol=1e-10)


def test_refresh_rebuilds_only_changed_layers():
    model = build_small_network(1)
    engine = InferenceEngine(model)
    engine.predict_logits(sample_images(2))
    assert engine.refresh() == 0  # nothing stale after a clean build
    _mutate_versioned(model)
    assert engine.refresh() == 1  # exactly the touched conv, not the plan
    assert engine.refresh() == 0  # and refreshing is idempotent


def test_ignore_policy_serves_cached_weights():
    model = build_small_network(4)
    engine = InferenceEngine(model, on_stale="ignore")
    images = sample_images(4)
    before = engine.predict_logits(images).copy()
    _mutate_versioned(model)
    np.testing.assert_array_equal(engine.predict_logits(images), before)


def test_bn_running_stats_mutation_is_caught():
    """BN statistics are plain buffers (no version counter); the fold
    fingerprint must still notice them moving — e.g. after a training-mode
    forward."""
    model = build_small_network(1)
    engine = InferenceEngine(model, on_stale="refresh")
    images = sample_images(5)
    engine.predict_logits(images)
    from repro.nn.layers.norm import BatchNorm2d

    bn = next(m for m in model.modules() if isinstance(m, BatchNorm2d))
    bn.running_mean[...] += 0.5
    np.testing.assert_allclose(
        engine.predict_logits(images), eager_logits(model, images), atol=1e-10
    )


def test_constructor_validation():
    model = build_small_network(4)
    with pytest.raises(ConfigurationError):
        InferenceEngine(model, on_stale="lazy")
    with pytest.raises(ConfigurationError):
        InferenceEngine(model, batch_size=0)
