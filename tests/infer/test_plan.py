"""Compilation structure: op lowering, bindings, buffers and error paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CompileError, ShapeError
from repro.infer import ExecutionContext, compile_network
from repro.infer.fold import bn_eval_affine
from repro.infer.plan import AffineOp, ConvOp, FallbackOp, LinearOp
from repro.nn.layers.container import Sequential
from repro.nn.layers.conv import Conv2d
from repro.nn.layers.linear import Linear
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.module import Module
from repro.nn.tensor import Tensor, no_grad

from tests.infer.conftest import build_small_network, sample_images


def test_one_binding_per_weighted_op():
    model = build_small_network(2)
    plan = compile_network(model)
    weighted = [op for op in plan.ops if isinstance(op, (ConvOp, LinearOp))]
    assert len(plan.bindings) == len(weighted)
    assert len(weighted) == len(model.conv_layers()) + len(model.linear_layers())


def test_conv_bn_pair_folds_to_single_op(rng):
    """A Conv2d→BatchNorm2d pair lowers to one ConvOp whose arrays carry the
    BN affine; a lone BatchNorm2d still lowers to an AffineOp."""
    conv = Conv2d(3, 4, kernel_size=3, padding=1, rng=rng)
    bn = BatchNorm2d(4)
    bn.running_mean[...] = rng.normal(size=4)
    bn.running_var[...] = rng.uniform(0.5, 2.0, 4)
    pair = Sequential(conv, bn)
    pair.eval()
    plan = compile_network(pair)
    assert [type(op) for op in plan.ops] == [ConvOp]
    scale, shift = bn_eval_affine(bn)
    expected_w = conv.weight.data.reshape(4, -1) * scale[:, None]
    np.testing.assert_allclose(plan.ops[0].weight2d, expected_w)

    lone = Sequential(bn)
    plan2 = compile_network(lone)
    assert [type(op) for op in plan2.ops] == [AffineOp]

    x = rng.normal(size=(2, 3, 8, 8))
    with no_grad():
        want = pair(Tensor(x)).numpy()
    got = plan.execute(x, ExecutionContext())
    np.testing.assert_allclose(got, want, atol=1e-12)


def test_stateless_leaf_gets_fallback_op(rng):
    class Clamp(Module):
        def forward(self, x):
            return x.clip(-1.0, 1.0)

    net = Sequential(Conv2d(3, 4, kernel_size=1, rng=rng), Clamp())
    net.eval()
    plan = compile_network(net)
    assert any(isinstance(op, FallbackOp) for op in plan.ops)


def test_unknown_stateful_module_raises(rng):
    class Mystery(Module):
        def __init__(self):
            super().__init__()
            self.inner = Linear(4, 4, rng=rng)

        def forward(self, x):
            return self.inner(x)

    with pytest.raises(CompileError):
        compile_network(Sequential(Conv2d(3, 4, kernel_size=1, rng=rng), Mystery()))


def test_empty_model_raises():
    with pytest.raises(CompileError):
        compile_network(Sequential())


def test_non_nchw_input_raises():
    model = build_small_network(4)
    plan = compile_network(model)
    with pytest.raises(ShapeError):
        plan.execute(np.zeros((3, 16, 16)), ExecutionContext())


def test_scratch_buffers_are_reused_and_rebound_on_shape_change():
    model = build_small_network(4)
    plan = compile_network(model)
    ctx = ExecutionContext()
    out1 = plan.execute(sample_images(8, seed=1), ctx)
    buf_ids = {k: id(v) for k, v in ctx._buffers.items()}
    out1_copy = out1.copy()
    plan.execute(sample_images(8, seed=2), ctx)
    # Same batch shape: every scratch buffer is recycled, no reallocation.
    assert {k: id(v) for k, v in ctx._buffers.items()} == buf_ids
    # And the first result's buffer was overwritten — callers must copy.
    assert not np.array_equal(out1, out1_copy)
    # A different (partial) batch shape rebinds cleanly.
    out3 = plan.execute(sample_images(3, seed=3), ctx)
    assert out3.shape[0] == 3


def test_plan_ops_never_alias_model_weights():
    """Mutating a plan array must not write through to master weights."""
    model = build_small_network(5, scheme_key="Full")
    plan = compile_network(model)
    for op, binding in zip(
        [plan.ops[b.op_index] for b in plan.bindings], plan.bindings
    ):
        arr = op.weight2d if isinstance(op, ConvOp) else op.weight_t
        assert not np.shares_memory(arr, binding.layer.weight.data)
