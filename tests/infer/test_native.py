"""Native C backend: bitwise parity, fallback ladder and cache plumbing.

The acceptance bar from the issue: every native kernel variant must be
*bitwise* identical to the numpy codegen it replaces — 8 Table-1 configs
x {dense, shift_plane} x {float64, int8} — and the backend must degrade
to numpy (never crash) when the toolchain is missing or a cached binary
is corrupt.  Parity runs even on a toolchain-free host (both sides are
then numpy and trivially equal); the "native actually executed"
assertions are gated on :func:`binding.available`.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.infer import InferenceEngine, PlanConfig
from repro.infer import kernels
from repro.infer.intq.build import IntConvOp, IntLinearOp
from repro.infer.native import binding, toolchain

from tests.infer.conftest import build_small_network, sample_images

ALL_CONFIGS = tuple(range(1, 9))
KERNELS = ("dense", "shift_plane")

NATIVE_OK = binding.available()
needs_toolchain = pytest.mark.skipif(
    not NATIVE_OK, reason="no C toolchain on this host"
)


def _bitwise_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Byte-level equality (``==`` would let ``-0.0 == 0.0`` hide a drift)."""
    return a.dtype == b.dtype and a.shape == b.shape and a.tobytes() == b.tobytes()


def _traced_backend_counts(engine) -> dict:
    counts: dict[str, int] = {}
    for prog in engine.plan._traced.values():
        for name, n in prog.backend_counts().items():
            counts[name] = counts.get(name, 0) + n
    return counts


# -- bitwise parity -----------------------------------------------------------


class TestBitwiseParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_float64(self, network_id, kernel):
        """backend="native" reproduces backend="numpy" byte-for-byte."""
        model = build_small_network(network_id)
        images = sample_images(5, seed=network_id)
        want = InferenceEngine(
            model, config=PlanConfig(kernel=kernel, backend="numpy")
        ).predict_logits(images)
        native_engine = InferenceEngine(
            model, config=PlanConfig(kernel=kernel, backend="native")
        )
        got = native_engine.predict_logits(images)
        assert _bitwise_equal(got, want)
        if NATIVE_OK:
            counts = _traced_backend_counts(native_engine)
            assert counts.get("native", 0) > 0, counts

    @pytest.mark.parametrize("kernel", KERNELS)
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_int8(self, network_id, kernel):
        """The integer program's native kernels are exact: same bits."""
        model = build_small_network(network_id)
        images = sample_images(4, seed=network_id)
        want = InferenceEngine(
            model, config=PlanConfig(dtype="int8", kernel=kernel, backend="numpy")
        ).predict_logits(images)
        native_engine = InferenceEngine(
            model, config=PlanConfig(dtype="int8", kernel=kernel, backend="native")
        )
        got = native_engine.predict_logits(images)
        assert _bitwise_equal(got, want)
        if NATIVE_OK:
            matmuls = [
                op
                for op in native_engine.plan.intq.ops
                if isinstance(op, (IntConvOp, IntLinearOp))
            ]
            assert any(op.backend == "native" for op in matmuls)

    def test_batch_size_does_not_change_native_bits(self):
        """Kernels are rebound per batch shape; every binding must agree."""
        model = build_small_network(4)
        images = sample_images(16, seed=2)
        engine = InferenceEngine(model, config=PlanConfig(backend="native"))
        ref = engine.predict_logits(images, batch_size=16)
        for bs in (1, 3, 16):
            assert _bitwise_equal(engine.predict_logits(images, batch_size=bs), ref)


# -- fallback ladder ----------------------------------------------------------


@pytest.fixture
def no_toolchain(monkeypatch, tmp_path):
    """Simulate a host without a C compiler, hermetically.

    ``$CC`` points at a non-executable path (honored strictly by
    :func:`toolchain.find_compiler`), the cache root moves to a tempdir so
    nothing touches the real host caches, and the process-wide memo /
    kernel caches are cleared on both sides so no previously compiled
    native function can leak in (the kernel cache is keyed spec-first).
    """
    monkeypatch.setenv("CC", "/nonexistent-compiler")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    binding.reset()
    kernels.clear_caches()
    yield
    binding.reset()
    kernels.clear_caches()


class TestFallback:
    def test_missing_toolchain_serves_numpy(self, no_toolchain):
        """No compiler: the plan builds, serves, and binds zero native ops."""
        assert not binding.available()
        model = build_small_network(4)
        images = sample_images(5, seed=9)
        engine = InferenceEngine(model, config=PlanConfig(backend="auto"))
        got = engine.predict_logits(images)
        want = InferenceEngine(
            model, config=PlanConfig(backend="numpy")
        ).predict_logits(images)
        assert _bitwise_equal(got, want)
        counts = _traced_backend_counts(engine)
        assert counts.get("native", 0) == 0, counts
        assert counts.get("numpy", 0) > 0

    def test_missing_toolchain_forced_native_still_serves(self, no_toolchain):
        """Even an explicit backend="native" degrades instead of raising."""
        model = build_small_network(6)
        images = sample_images(3, seed=1)
        engine = InferenceEngine(model, config=PlanConfig(backend="native"))
        want = InferenceEngine(
            model, config=PlanConfig(backend="numpy")
        ).predict_logits(images)
        assert _bitwise_equal(engine.predict_logits(images), want)

    def test_status_reports_reason(self, no_toolchain):
        info = binding.status()
        assert info["available"] is False
        assert "reason" in info


@needs_toolchain
class TestDiskCache:
    SOURCE = (
        "void run(void **ptrs, long long *dims, double *scalars)\n"
        "{ (void)ptrs; (void)dims; (void)scalars; }\n"
    )

    @pytest.fixture(autouse=True)
    def hermetic_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        binding.reset()
        yield
        binding.reset()

    def test_corrupted_so_is_recompiled(self):
        """A torn/garbage cached binary is dropped and rebuilt once."""
        so_path = toolchain.compile_source(self.SOURCE)
        assert os.path.exists(so_path)
        with open(so_path, "wb") as fh:
            fh.write(b"\x7fELFgarbage")
        toolchain.reset()  # drop the mapped-library memo
        fn = toolchain.load_library(so_path, self.SOURCE)
        assert fn is not None
        assert os.path.getsize(so_path) > len(b"\x7fELFgarbage")

    def test_corrupted_so_without_source_raises_unavailable(self):
        so_path = toolchain.compile_source(self.SOURCE)
        with open(so_path, "wb") as fh:
            fh.write(b"junk")
        toolchain.reset()
        with pytest.raises(toolchain.NativeUnavailable):
            toolchain.load_library(so_path)

    def test_compile_cache_hits_on_identical_source(self):
        first = toolchain.compile_source(self.SOURCE)
        mtime = os.path.getmtime(first)
        second = toolchain.compile_source(self.SOURCE)
        assert first == second
        assert os.path.getmtime(second) == mtime  # reused, not rebuilt


# -- cache plumbing (satellites 1 & 2) ---------------------------------------


class TestKernelCacheLRU:
    def test_eviction_counter_and_bound(self):
        cache = kernels._KernelCache(max_entries=2)
        for i in range(4):
            spec = kernels.KernelSpec("conv", "dense", (("s", i),), "float64", (), ())
            cache.get_native(spec, f"src{i}", lambda s: object())
        stats = cache.stats()
        assert stats["specs"] == 2
        assert stats["evictions"] == 2
        assert stats["max_entries"] == 2
        # Sources are never evicted (they are the cheap re-insertion path).
        assert stats["compiled_sources"] == 4

    def test_reinsertion_after_eviction_skips_rebuild(self):
        cache = kernels._KernelCache(max_entries=1)
        builds = []
        spec0 = kernels.KernelSpec("conv", "dense", (("s", 0),), "float64", (), ())
        spec1 = kernels.KernelSpec("conv", "dense", (("s", 1),), "float64", (), ())
        cache.get_native(spec0, "srcA", lambda s: builds.append(s) or object())
        cache.get_native(spec1, "srcB", lambda s: builds.append(s) or object())
        cache.get_native(spec0, "srcA", lambda s: builds.append(s) or object())
        assert builds == ["srcA", "srcB"]  # spec0 re-entry reused srcA


class TestAutotunePersistence:
    @pytest.fixture(autouse=True)
    def hermetic_cache(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        yield

    def test_roundtrip_across_instances(self):
        key = ("conv", (16, 8, 8), "dense", 1)
        first = kernels._AutotuneCache()
        first.put(key, {"impl": "dense", "backend": "native"})
        assert os.path.exists(first.disk_path())
        fresh = kernels._AutotuneCache()
        assert fresh.get(key) == {"impl": "dense", "backend": "native"}

    def test_corrupt_decision_file_is_dropped(self):
        probe = kernels._AutotuneCache()
        path = probe.disk_path()
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write("{not json")
        fresh = kernels._AutotuneCache()
        assert fresh.get(("anything",)) is None
        assert not os.path.exists(path)  # corrupt file unlinked

    def test_clear_removes_decision_file(self):
        cache = kernels._AutotuneCache()
        cache.put(("k",), {"impl": "dense"})
        assert os.path.exists(cache.disk_path())
        cache.clear()
        assert not os.path.exists(cache.disk_path())


class TestCacheInfo:
    def test_cache_info_shape(self):
        info = kernels.cache_info()
        assert set(info["kernels"]) >= {
            "hits", "misses", "specs", "compiled_sources", "evictions", "max_entries"
        }
        assert "hits" in info["autotune"]
        if NATIVE_OK:
            assert "native" in info
            assert "cache_dir" in info["native"]
            assert "status" in info["native"]

    def test_public_reexport(self):
        import repro.infer

        assert repro.infer.cache_info is kernels.cache_info
