"""Shared builders for inference-engine tests.

Networks are built at reduced width (``WIDTH_SCALE``) so that every Table-1
structure — including the ResNet-18s — stays unit-test cheap, while the op
mix (conv+BN folding, residual adds, pooling, activation quantizers) matches
the full-size models exactly.
"""

from __future__ import annotations

import numpy as np

from repro.models.network import QuantizedNetwork
from repro.models.registry import build_network
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.tensor import Tensor, no_grad
from repro.quant.schemes import paper_schemes

# Per-network width multipliers keeping each structure test-sized.
WIDTH_SCALE = {1: 0.25, 2: 0.125, 3: 0.0625, 4: 0.5, 5: 0.25, 6: 0.125, 7: 0.0625, 8: 0.125}

IMAGE_SIZE = 16
NUM_CLASSES = 10


def randomize_bn_stats(model: QuantizedNetwork, rng: np.random.Generator) -> None:
    """Give every BN layer non-trivial affine params and running statistics.

    Freshly initialised BN (gamma=1, beta=0, mean=0, var=1) folds into an
    identity affine, which would let a broken fold pass parity tests.
    """
    for m in model.modules():
        if isinstance(m, BatchNorm2d):
            c = m.num_features
            m.gamma.data[...] = rng.uniform(0.5, 1.5, c)
            m.beta.data[...] = rng.normal(0.0, 0.2, c)
            m.running_mean[...] = rng.normal(0.0, 0.5, c)
            m.running_var[...] = rng.uniform(0.5, 2.0, c)


def build_small_network(
    network_id: int, scheme_key: str = "FL_a", seed: int = 0
) -> QuantizedNetwork:
    """A scaled-down Table-1 network with randomized BN state, in eval mode."""
    scheme = paper_schemes()[scheme_key]
    model = build_network(
        network_id,
        scheme,
        num_classes=NUM_CLASSES,
        image_size=IMAGE_SIZE,
        width_scale=WIDTH_SCALE[network_id],
        rng=seed,
    )
    randomize_bn_stats(model, np.random.default_rng(seed + 1))
    model.eval()
    return model


def sample_images(n: int, seed: int = 0) -> np.ndarray:
    return np.random.default_rng(seed).normal(0.0, 1.0, (n, 3, IMAGE_SIZE, IMAGE_SIZE))


def eager_logits(model: QuantizedNetwork, images: np.ndarray) -> np.ndarray:
    """Reference logits from the eager eval-mode forward pass."""
    mode = model.training
    model.eval()
    with no_grad():
        out = model(Tensor(images)).numpy()
    model.train(mode)
    return out
