"""Traced plan compiler: fused codegen kernels vs the op-by-op interpreter.

The traced executor (:mod:`repro.infer.trace` / :mod:`repro.infer.fuse` /
:mod:`repro.infer.kernels`) promises **bitwise** float64 equality with the
interpreter — the generated kernels replay the exact same ufunc sequence on
the exact same operand layouts, fusion only removes buffer traffic, and
batch blocking splits along an axis every blocked op treats per-sample.
These tests pin that contract across every Table-1 config, both kernel
implementations and both sparsity states, force multi-block execution
(including a ragged tail block), and cover the cache / hot-refresh /
profiler machinery around the compiler.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import InferenceEngine, PlanConfig, compile_network
from repro.infer import fuse, kernels
from repro.infer.plan import ExecutionContext
from repro.quant.sparsify import sparsify_model

from tests.infer.conftest import build_small_network, eager_logits, sample_images

PARITY_ATOL = 1e-5

ALL_CONFIGS = list(range(1, 9))

# The interpreter reference: same plan passes (pruning, kernels), no tracing.
def _interp(trace_cfg: PlanConfig) -> PlanConfig:
    return PlanConfig(
        prune=trace_cfg.prune,
        all_dead=trace_cfg.all_dead,
        kernel=trace_cfg.kernel,
        trace=False,
    )


def _logits(model, config: PlanConfig, images: np.ndarray) -> np.ndarray:
    engine = InferenceEngine(model, config=config)
    return engine.forward_batch(images, check_stale=False).copy()


def force_multiblock(monkeypatch, target_bytes: int = 64 << 10, block_min: int = 2) -> None:
    """Shrink the blocking thresholds so even the width-scaled test nets
    split a small batch into several blocks plus a ragged tail."""
    monkeypatch.setattr(fuse, "_BLOCK_TARGET_BYTES", target_bytes)
    monkeypatch.setattr(fuse, "_BLOCK_MIN", block_min)


class TestBitwiseParity:
    """Traced logits must equal interpreter logits bit for bit."""

    @pytest.mark.parametrize("kernel", ["dense", "shift_plane"])
    @pytest.mark.parametrize("network_id", ALL_CONFIGS)
    def test_all_configs_both_kernels_both_sparsities(self, network_id, kernel, monkeypatch):
        # Batch 13 with tiny block thresholds → multi-block execution with a
        # tail block, the layout the fused kernels must keep exact.
        force_multiblock(monkeypatch)
        images = sample_images(13, seed=network_id)
        for pruned in (False, True):
            model = build_small_network(network_id, seed=network_id)
            if pruned:
                sparsify_model(model, 0.4)
            cfg = PlanConfig(prune=pruned, kernel=kernel)
            want = _logits(model, _interp(cfg), images)
            got = _logits(model, cfg, images)
            assert np.array_equal(got, want), (
                f"net{network_id} kernel={kernel} pruned={pruned}: traced logits "
                f"diverge from interpreter (max diff {np.max(np.abs(got - want)):.3e})"
            )

    def test_batch_one_single_block(self):
        model = build_small_network(1)
        images = sample_images(1)
        cfg = PlanConfig()
        assert np.array_equal(_logits(model, cfg, images), _logits(model, _interp(cfg), images))

    def test_fuse_disabled_still_bitwise(self):
        """trace=True, fuse=False runs the unfused traced path — still exact."""
        model = build_small_network(5)
        images = sample_images(6, seed=3)
        cfg = PlanConfig(fuse=False)
        got = _logits(model, cfg, images)
        assert np.array_equal(got, _logits(model, _interp(cfg), images))
        prog = compile_network(model, config=cfg).traced_program(images.shape)
        # A second build for the logits above already compiled one; this
        # fresh plan's program must report zero fusions under fuse=False.
        assert prog is not None and prog.stats["fused_elementwise"] == 0

    def test_trace_disabled_uses_interpreter(self):
        model = build_small_network(4)
        plan = compile_network(model, config=PlanConfig(trace=False))
        plan.execute(sample_images(2), ExecutionContext())
        assert not plan._traced
        assert plan.summary()["trace"]["enabled"] is False

    def test_traced_matches_eager_reference(self):
        """End-to-end sanity: the traced engine also sits inside the repo's
        eager-parity bar (the interpreter equality above is the strict one)."""
        model = build_small_network(6)
        images = sample_images(5, seed=7)
        got = InferenceEngine(model).predict_logits(images)
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL


class TestProgramStructure:
    def test_fusion_and_buffer_stats(self):
        model = build_small_network(1)
        plan = compile_network(model)
        prog = plan.traced_program((8, 3, 16, 16))
        assert prog is not None
        stats = prog.stats
        # Conv→(BN-folded affine)→LeakyReLU→ActQuant chains must have fused.
        assert stats["fused_elementwise"] > 0
        # Liveness-based register reuse must beat one-buffer-per-value.
        assert 0 < stats["peak_intermediate_bytes"] < stats["naive_intermediate_bytes"]
        assert stats["nodes"] > 0 and stats["blocks"] >= 1

    def test_blocking_cuts_at_linear(self, monkeypatch):
        """The classifier head forces full-batch execution; everything before
        it runs blocked."""
        force_multiblock(monkeypatch)
        model = build_small_network(1)
        prog = compile_network(model).traced_program((13, 3, 16, 16))
        stats = prog.stats
        assert stats["blocks"] > 1
        assert 0 < stats["blocked_nodes"] < stats["nodes"]
        assert stats["block_size"] < 13

    def test_plan_summary_trace_block(self):
        model = build_small_network(4)
        engine = InferenceEngine(model)
        engine.forward_batch(sample_images(4), check_stale=False)
        trace = engine.plan_summary()["trace"]
        assert trace["enabled"] is True and trace["fuse"] is True
        assert len(trace["programs"]) == 1
        assert trace["fused_elementwise_total"] > 0
        assert trace["peak_intermediate_bytes"] > 0
        assert {"kernels", "autotune"} <= set(trace["cache"])

    def test_bound_state_cache_is_bounded(self):
        """One context compiling many input shapes keeps at most a few bound
        states (the per-shape programs live on the plan, states on the ctx)."""
        model = build_small_network(4)
        engine = InferenceEngine(model)
        for n in range(1, 8):
            engine.forward_batch(sample_images(n), check_stale=False)
        assert len(engine._ctx._traced) <= fuse._MAX_BOUND_STATES


class TestKernelCache:
    def test_shape_identical_plans_hit_the_cache(self):
        kernels.clear_caches()
        images = sample_images(4, seed=11)
        model_a = build_small_network(4, seed=0)
        InferenceEngine(model_a, config=PlanConfig(prune=False)).forward_batch(
            images, check_stale=False
        )
        first = kernels.cache_stats()["kernels"]
        assert first["misses"] > 0 and first["specs"] > 0
        # Same architecture, different weights → same kernel specs → hits.
        model_b = build_small_network(4, seed=1)
        InferenceEngine(model_b, config=PlanConfig(prune=False)).forward_batch(
            images, check_stale=False
        )
        second = kernels.cache_stats()["kernels"]
        assert second["hits"] > first["hits"]
        assert second["misses"] == first["misses"]

    def test_autotune_decisions_persist_across_rebuilds(self):
        """Satellite: shape-identical rebuilds reuse autotune measurements
        instead of re-timing every layer."""
        kernels.AUTOTUNE_CACHE.clear()

        def tuned_entries(seed):
            model = build_small_network(7, seed=seed)
            sparsify_model(model, 0.5)
            plan = compile_network(model)  # kernel="auto"
            return [e["autotune"] for e in plan.layer_info if "autotune" in e]

        first = tuned_entries(0)
        # The first compile measures at least once; repeated ResNet blocks
        # with identical shape signatures already reuse those measurements.
        assert first and any(r["cached"] is False for r in first)
        second = tuned_entries(0)  # same shapes: decisions come from cache
        assert second and all(r["cached"] is True for r in second)
        assert [r["chosen"] for r in second] == [r["chosen"] for r in first]
        assert kernels.cache_stats()["autotune"]["hits"] >= len(second)
        # The report keeps the contract the sparsity suite pins.
        for report in second:
            assert report["chosen"] in ("dense", "shift_plane")
            assert report["dense_s"] > 0.0 and report["shift_plane_s"] > 0.0


class TestHotRefresh:
    def test_weight_update_recompiles_traced_program(self):
        """The ISSUE's hot-refresh regression: a weight patch must invalidate
        the traced programs (they bind quantized arrays by reference at
        compile time) and the recompiled program must serve the new logits."""
        model = build_small_network(4)
        engine = InferenceEngine(model, on_stale="refresh")
        images = sample_images(5, seed=13)
        before = engine.predict_logits(images)
        plan = engine.plan
        prog_before = plan.traced_program(images.shape)
        assert prog_before is not None

        layer = model.conv_layers()[0]
        layer.weight.data[...] *= 2.0
        layer.weight.bump_version()
        after = engine.predict_logits(images)
        assert engine.plan is plan  # value-only change: patched in place
        prog_after = plan.traced_program(images.shape)
        assert prog_after is not None and prog_after.uid != prog_before.uid
        assert not np.array_equal(before, after)
        assert np.max(np.abs(after - eager_logits(model, images))) <= PARITY_ATOL
        # And the recompiled program still equals the interpreter bitwise.
        cfg = engine.config
        assert np.array_equal(after, _logits(model, _interp(cfg), images))

    def test_structural_rebuild_replaces_programs(self):
        model = build_small_network(4)
        sparsify_model(model, 0.3)
        engine = InferenceEngine(model, on_stale="refresh")
        images = sample_images(5, seed=17)
        engine.predict_logits(images)
        old_plan = engine.plan

        sparsify_model(model, 0.6)  # dead-filter structure drifts
        got = engine.predict_logits(images)
        assert engine.plan is not old_plan
        assert engine.plan.traced_program(images.shape) is not None
        assert np.max(np.abs(got - eager_logits(model, images))) <= PARITY_ATOL


class TestProfiler:
    def test_per_ir_op_phase_names(self):
        engine = InferenceEngine(build_small_network(1), profile=True)
        engine.forward_batch(sample_images(3), check_stale=False)
        timings = engine.plan_summary()["timings"]
        phases = list(timings["totals"])
        assert phases and all(p.startswith("ir") for p in phases)
        assert any("conv[dense]" in p and "+lrelu+aq" in p for p in phases)
        assert all(count >= 1 for count in timings["counts"].values())

    def test_interpreter_phase_names(self):
        engine = InferenceEngine(
            build_small_network(1), config=PlanConfig(trace=False), profile=True
        )
        engine.forward_batch(sample_images(3), check_stale=False)
        phases = list(engine.plan_summary()["timings"]["totals"])
        assert phases and all(p.startswith("op") for p in phases)
        assert any("ConvOp" in p for p in phases)
