"""Batch sharding: deterministic ordering across workers and backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.infer import InferenceEngine, shard_slices

from tests.infer.conftest import build_small_network, sample_images


class TestShardSlices:
    def test_covers_range_in_order(self):
        slices = shard_slices(10, 3)
        assert slices == [slice(0, 3), slice(3, 6), slice(6, 9), slice(9, 10)]

    def test_exact_division(self):
        assert shard_slices(8, 4) == [slice(0, 4), slice(4, 8)]

    def test_single_short_batch(self):
        assert shard_slices(2, 16) == [slice(0, 2)]

    def test_total_smaller_than_batch_covers_everything(self):
        """total < batch_size yields exactly one short slice, nothing lost."""
        slices = shard_slices(5, 32)
        assert slices == [slice(0, 5)]
        covered = [i for s in slices for i in range(s.start, s.stop)]
        assert covered == list(range(5))

    def test_total_zero_is_empty(self):
        assert shard_slices(0, 8) == []

    def test_total_one(self):
        assert shard_slices(1, 8) == [slice(0, 1)]

    def test_negative_total_rejected(self):
        with pytest.raises(ConfigurationError):
            shard_slices(-1, 8)

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            shard_slices(10, 0)


class TestShardedPrediction:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial_in_order(self, backend):
        """Sharded logits are identical to the serial path, row for row,
        regardless of worker completion order."""
        model = build_small_network(4)
        images = sample_images(22, seed=9)
        engine = InferenceEngine(model)
        serial = engine.predict_logits(images, batch_size=5, workers=1)
        sharded = engine.predict_logits(images, batch_size=5, workers=3, backend=backend)
        np.testing.assert_array_equal(sharded, serial)

    def test_more_workers_than_batches(self):
        model = build_small_network(4)
        images = sample_images(6)
        engine = InferenceEngine(model)
        serial = engine.predict_logits(images)
        np.testing.assert_array_equal(
            engine.predict_logits(images, batch_size=4, workers=8), serial
        )

    def test_workers_exceed_shards_single_shard(self):
        """total < batch_size under the pool: one shard, many idle workers."""
        model = build_small_network(4)
        images = sample_images(3)
        engine = InferenceEngine(model)
        serial = engine.predict_logits(images, workers=1)
        sharded = engine.predict_logits(images, batch_size=16, workers=6)
        np.testing.assert_array_equal(sharded, serial)

    def test_threaded_ordering_deterministic_across_runs(self):
        """Repeated threaded runs always return rows in input order, even
        though worker completion order is scheduler-dependent."""
        model = build_small_network(4)
        images = sample_images(33, seed=17)
        engine = InferenceEngine(model)
        serial = engine.predict_logits(images, batch_size=4, workers=1)
        for _ in range(5):
            sharded = engine.predict_logits(images, batch_size=4, workers=4)
            np.testing.assert_array_equal(sharded, serial)

    def test_unknown_backend_rejected(self):
        model = build_small_network(4)
        engine = InferenceEngine(model)
        with pytest.raises(ConfigurationError):
            engine.predict_logits(sample_images(4), workers=2, backend="mpi")

    def test_empty_input_rejected(self):
        model = build_small_network(4)
        engine = InferenceEngine(model)
        with pytest.raises(ConfigurationError):
            engine.predict_logits(sample_images(0))
