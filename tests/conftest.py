"""Shared pytest fixtures."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(1234)
