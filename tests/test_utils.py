"""Tests for shared utilities (rng, serialization, logging)."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.logging import get_logger
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.serialization import load_json, save_json


class TestRng:
    def test_int_seed_deterministic(self):
        a = as_generator(42).normal(size=5)
        b = as_generator(42).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_fixed_default(self):
        np.testing.assert_array_equal(
            as_generator(None).normal(size=3), as_generator(None).normal(size=3)
        )

    def test_invalid_type(self):
        with pytest.raises(ConfigurationError):
            as_generator("seed")

    def test_spawn_independent_streams(self):
        gens = spawn_generators(7, 3)
        assert len(gens) == 3
        draws = [g.normal(size=4) for g in gens]
        assert not np.allclose(draws[0], draws[1])

    def test_spawn_deterministic(self):
        a = [g.normal() for g in spawn_generators(7, 2)]
        b = [g.normal() for g in spawn_generators(7, 2)]
        np.testing.assert_array_equal(a, b)

    def test_spawn_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn_generators(0, -1)


class TestSerialization:
    def test_round_trip_plain(self, tmp_path):
        path = save_json(tmp_path / "x.json", {"a": 1, "b": [1.5, "s"]})
        assert load_json(path) == {"a": 1, "b": [1.5, "s"]}

    def test_numpy_values_converted(self, tmp_path):
        obj = {
            "i": np.int64(3),
            "f": np.float64(2.5),
            "b": np.bool_(True),
            "arr": np.arange(3),
        }
        loaded = load_json(save_json(tmp_path / "np.json", obj))
        assert loaded == {"i": 3, "f": 2.5, "b": True, "arr": [0, 1, 2]}

    def test_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "deep" / "nested" / "x.json", [1])
        assert path.exists()


class TestLogging:
    def test_namespaced_under_repro(self):
        assert get_logger("train").name == "repro.train"

    def test_existing_prefix_kept(self):
        assert get_logger("repro.quant").name == "repro.quant"

    def test_returns_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)
