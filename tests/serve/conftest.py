"""Shared builders for serving-layer tests.

Reuses the inference suite's scaled-down Table-1 networks so the serving
stack is always tested against the exact models whose engine parity is
already certified by ``tests/infer``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import InferenceEngine

from tests.infer.conftest import build_small_network, sample_images

__all__ = ["build_small_network", "sample_images", "served_engine"]


@pytest.fixture()
def served_engine():
    """A compiled engine for the scaled-down Table-1 config 4 network."""
    return InferenceEngine(build_small_network(4))


def assert_rows_match(got_rows, serial: np.ndarray, indices) -> None:
    """Each future/row result must equal its serial logits row exactly."""
    for row, index in zip(got_rows, indices):
        np.testing.assert_array_equal(np.asarray(row), serial[index])
