"""Shared builders for serving-layer tests.

Reuses the inference suite's scaled-down Table-1 networks so the serving
stack is always tested against the exact models whose engine parity is
already certified by ``tests/infer``.

Also implements the ``@pytest.mark.timeout(seconds)`` watchdog used by the
multi-process cluster/chaos tests: the environment has no pytest-timeout
plugin, so a SIGALRM handler raises inside the test instead of letting a
wedged worker pool hang the whole run.
"""

from __future__ import annotations

import signal

import numpy as np
import pytest

from repro.infer import InferenceEngine

from tests.infer.conftest import build_small_network, sample_images

__all__ = ["build_small_network", "sample_images", "served_engine"]


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` via SIGALRM (main thread).

    SIGALRM only interrupts the main thread, which is exactly where these
    tests block on futures/joins; worker threads and processes are daemons
    and die with the test session.
    """
    marker = item.get_closest_marker("timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 120

    def on_alarm(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s timeout (wedged cluster?)")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def served_engine():
    """A compiled engine for the scaled-down Table-1 config 4 network."""
    return InferenceEngine(build_small_network(4))


def assert_rows_match(got_rows, serial: np.ndarray, indices) -> None:
    """Each future/row result must equal its serial logits row exactly."""
    for row, index in zip(got_rows, indices):
        np.testing.assert_array_equal(np.asarray(row), serial[index])
