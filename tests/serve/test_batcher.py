"""Micro-batcher: coalescing, ordering, deadlines, backpressure, shutdown."""

from __future__ import annotations

import threading
import time
from concurrent.futures import wait

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    DeadlineExceededError,
    QueueFullError,
    ServerClosedError,
    ShapeError,
)
from repro.serve import BatcherConfig, MicroBatcher

from tests.serve.conftest import sample_images


class TestBatcherConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"max_wait_s": -0.1},
            {"queue_depth": 0},
            {"full_policy": "drop-newest"},
            {"default_deadline_s": 0.0},
            {"workers": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatcherConfig(**kwargs)


class TestResultsAndCoalescing:
    def test_parity_and_order_against_serial_engine(self, served_engine):
        """Every future resolves to exactly its image's serial logits row."""
        images = sample_images(40, seed=1)
        serial = served_engine.predict_logits(images)
        with MicroBatcher(served_engine, BatcherConfig(max_batch_size=8, max_wait_s=0.005)) as b:
            futures = [b.submit(img) for img in images]
            for i, fut in enumerate(futures):
                np.testing.assert_array_equal(fut.result(timeout=10), serial[i])

    def test_requests_coalesce_into_batches(self, served_engine):
        """Queued-up requests must execute as multi-image batches."""
        batcher = MicroBatcher(served_engine, BatcherConfig(max_batch_size=16, max_wait_s=0.05))
        images = sample_images(32, seed=2)
        futures = [batcher.submit(img) for img in images]  # queued before start
        batcher.start()
        wait(futures, timeout=10)
        batcher.stop()
        hist = batcher.metrics.batch_size_histogram()
        assert sum(size * n for size, n in hist.items()) == 32
        assert max(hist) > 1, f"no coalescing happened: {hist}"

    def test_batch_size_one_disables_batching(self, served_engine):
        batcher = MicroBatcher(served_engine, BatcherConfig(max_batch_size=1))
        images = sample_images(6, seed=3)
        futures = [batcher.submit(img) for img in images]
        batcher.start()
        wait(futures, timeout=10)
        batcher.stop()
        assert batcher.metrics.batch_size_histogram() == {1: 6}

    def test_result_is_detached_copy(self, served_engine):
        """Futures stay valid after the worker moves on to later batches."""
        images = sample_images(10, seed=4)
        serial = served_engine.predict_logits(images)
        with MicroBatcher(served_engine, BatcherConfig(max_batch_size=1)) as b:
            futures = [b.submit(img) for img in images]
            wait(futures, timeout=10)
        for i, fut in enumerate(futures):  # read *after* all batches ran
            np.testing.assert_array_equal(fut.result(), serial[i])


class TestValidation:
    def test_non_chw_rejected(self, served_engine):
        b = MicroBatcher(served_engine)
        with pytest.raises(ShapeError):
            b.submit(np.zeros((4, 3, 16, 16)))  # a batch, not one image

    def test_mismatched_shape_rejected_without_poisoning(self, served_engine):
        """A wrong-shaped image errors alone; queued work is untouched."""
        b = MicroBatcher(served_engine, BatcherConfig(max_batch_size=8, max_wait_s=0.05))
        good = b.submit(sample_images(1, seed=5)[0])
        with pytest.raises(ShapeError):
            b.submit(np.zeros((3, 8, 8)))
        b.start()
        assert good.result(timeout=10).shape == (10,)
        b.stop()
        assert b.metrics.offered.value == 1  # malformed request never counted


class TestDeadlines:
    def test_expired_request_dropped_before_compute(self, served_engine):
        b = MicroBatcher(served_engine).start()
        b.pause()
        fut = b.submit(sample_images(1)[0], deadline_s=0.01)
        time.sleep(0.05)
        b.resume()
        with pytest.raises(DeadlineExceededError):
            fut.result(timeout=10)
        b.stop()
        snap = b.metrics.snapshot()["requests"]
        assert snap["expired"] == 1 and snap["completed"] == 0

    def test_default_deadline_from_config(self, served_engine):
        b = MicroBatcher(served_engine, BatcherConfig(default_deadline_s=0.01)).start()
        b.pause()
        fut = b.submit(sample_images(1)[0])
        time.sleep(0.05)
        b.resume()
        with pytest.raises(DeadlineExceededError):
            fut.result(timeout=10)
        b.stop()

    def test_generous_deadline_completes(self, served_engine):
        with MicroBatcher(served_engine) as b:
            fut = b.submit(sample_images(1)[0], deadline_s=30.0)
            assert fut.result(timeout=10).shape == (10,)


class TestBackpressure:
    def test_reject_policy_sheds_beyond_high_water(self, served_engine):
        b = MicroBatcher(
            served_engine, BatcherConfig(queue_depth=2, full_policy="reject")
        ).start()
        b.pause()  # hold the queue at depth deterministically
        futs = [b.submit(img) for img in sample_images(2, seed=6)]
        with pytest.raises(QueueFullError):
            b.submit(sample_images(1, seed=7)[0])
        b.resume()
        wait(futs, timeout=10)
        b.stop()
        snap = b.metrics.snapshot()["requests"]
        assert snap == {
            "offered": 3, "accepted": 2, "shed": 1, "completed": 2,
            "expired": 0, "failed": 0, "cancelled": 0,
        }

    def test_block_policy_applies_backpressure(self, served_engine):
        b = MicroBatcher(
            served_engine, BatcherConfig(queue_depth=1, full_policy="block")
        ).start()
        b.pause()
        first = b.submit(sample_images(1, seed=8)[0])
        results = {}

        def blocked_submit():
            results["future"] = b.submit(sample_images(1, seed=9)[0])

        t = threading.Thread(target=blocked_submit)
        t.start()
        time.sleep(0.1)
        assert t.is_alive(), "submit should block while the queue is full"
        b.resume()  # batcher drains → space frees → blocked submit proceeds
        t.join(timeout=10)
        assert not t.is_alive()
        assert first.result(timeout=10).shape == (10,)
        assert results["future"].result(timeout=10).shape == (10,)
        b.stop()
        assert b.metrics.shed.value == 0


class TestShutdown:
    def test_graceful_drain_resolves_every_future(self, served_engine):
        """The acceptance-criteria shutdown test: stop(drain=True) completes
        all queued work — zero dropped or cancelled futures."""
        images = sample_images(24, seed=10)
        serial = served_engine.predict_logits(images)
        b = MicroBatcher(served_engine, BatcherConfig(max_batch_size=4)).start()
        b.pause()  # pile everything up so stop() really has work to drain
        futures = [b.submit(img) for img in images]
        b.stop(drain=True)  # drain overrides pause
        for i, fut in enumerate(futures):
            assert fut.done()
            np.testing.assert_array_equal(fut.result(), serial[i])
        snap = b.metrics.snapshot()["requests"]
        assert snap["completed"] == len(images)
        assert snap["cancelled"] == 0

    def test_fast_stop_fails_queued_futures_explicitly(self, served_engine):
        b = MicroBatcher(served_engine).start()
        b.pause()
        futures = [b.submit(img) for img in sample_images(5, seed=11)]
        b.stop(drain=False)
        for fut in futures:
            assert fut.done()
            with pytest.raises(ServerClosedError):
                fut.result()
        assert b.metrics.cancelled.value == 5

    def test_submit_after_stop_rejected(self, served_engine):
        b = MicroBatcher(served_engine).start()
        b.stop()
        with pytest.raises(ServerClosedError):
            b.submit(sample_images(1)[0])

    def test_stop_idempotent(self, served_engine):
        b = MicroBatcher(served_engine).start()
        b.stop()
        b.stop()

    def test_multi_worker_batcher_parity(self, served_engine):
        """workers>1: each worker owns a context; results stay exact."""
        images = sample_images(30, seed=12)
        serial = served_engine.predict_logits(images)
        cfg = BatcherConfig(max_batch_size=4, max_wait_s=0.001, workers=3)
        with MicroBatcher(served_engine, cfg) as b:
            futures = [b.submit(img) for img in images]
            for i, fut in enumerate(futures):
                np.testing.assert_array_equal(fut.result(timeout=10), serial[i])
