"""Seconds-scale smoke run of the serving benchmark (marker: serve_bench).

Excluded from the default suite by ``pytest.ini``'s ``-m "not serve_bench"``
so tier-1 stays quick; run it with::

    PYTHONPATH=src python -m pytest tests/serve/test_bench_smoke.py -m serve_bench
"""

from __future__ import annotations

import json

import pytest

bench_serve = pytest.importorskip(
    "benchmarks.bench_serve", reason="benchmarks package requires repo root on sys.path"
)


@pytest.mark.serve_bench
def test_benchmark_smoke(tmp_path):
    result = bench_serve.run_benchmark(smoke=True)

    assert result["metadata"]["smoke"] is True
    rows = result["rows"]
    # Smoke covers the primary scale only, both transports, micro on and off.
    assert {r["scale"] for r in rows} == {"serving_16px"}
    assert {r["transport"] for r in rows} == {"batcher", "http"}
    assert {r["micro_batching"] for r in rows} == {False, True}
    for row in rows:
        assert row["requests"] == row["clients"] * result["metadata"]["requests_per_client"]
        assert row["throughput_rps"] > 0
        lat = row["latency_s"]
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]

    # Micro-batching must actually coalesce under concurrency; no speedup
    # bar at smoke scale (too few requests for stable timing — the full run
    # enforces the >=2x criterion in BENCH_serve.json).
    peak = result["summary"]["peak_clients"]
    coalesced = next(
        r for r in rows
        if r["transport"] == "batcher" and r["clients"] == peak and r["micro_batching"]
    )
    assert coalesced["mean_batch_size"] > 1.0
    assert result["summary"]["batcher_speedup_at_peak"] > 0

    out = tmp_path / "BENCH_serve.json"
    out.write_text(json.dumps(result))  # round-trips: everything is plain JSON
    assert json.loads(out.read_text())["rows"]


@pytest.mark.serve_bench
def test_cluster_sweep_smoke(tmp_path):
    """The multi-process cluster sweep: scaling rows are clean (no deaths,
    no sheds), the overload row sheds/downshifts with the accepted p99
    honoring its queue-derived bound, and everything is JSON-serializable."""
    sweep = bench_serve.run_cluster_sweep(smoke=True)

    assert sweep["metadata"]["smoke"] is True
    assert sweep["metadata"]["service_delay_s"] > 0  # offload model declared
    for row in sweep["scaling_rows"]:
        assert row["worker_deaths"] == 0
        assert row["requests_completed"] == row["requests_offered"]  # no sheds
        assert row["throughput_rps"] > 0
        for block in row["latency_by_priority_s"].values():
            assert block["completed"] > 0 and 0 < block["p50"] <= block["p99"]
    # two workers must beat one by a clear margin even at smoke scale
    scaling = sweep["summary"]["scaling_vs_1_worker"]
    assert scaling["workers_2"] > 1.5

    overload = sweep["overload_row"]
    assert sum(overload["shed_by_priority"].values()) > 0
    assert overload["downshifted"] > 0
    accepted_p99 = overload["latency_by_priority_s"]["interactive"]["p99"]
    assert accepted_p99 <= overload["p99_bound_s"]  # shed before collapse

    out = tmp_path / "BENCH_cluster.json"
    out.write_text(json.dumps(sweep))
    assert json.loads(out.read_text())["scaling_rows"]
