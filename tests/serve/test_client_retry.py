"""Client transport retries: backoff, typed exhaustion, deadline awareness.

Connection failures are injected deterministically with
:class:`~repro.testing.faults.ConnectionDropFault` on the client's
``pre_request_hook`` seam, so no real network flakiness is involved.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import DeadlineExceededError, RetriesExhaustedError, ServeError
from repro.serve import (
    BatcherConfig,
    ModelRegistry,
    ModelServer,
    PredictClient,
    ServerConfig,
)
from repro.testing import ConnectionDropFault

from tests.serve.conftest import build_small_network, sample_images


@pytest.fixture()
def server():
    registry = ModelRegistry(BatcherConfig(max_batch_size=8, max_wait_s=0.002))
    registry.register("net4", build_small_network(4))
    srv = ModelServer(registry, ServerConfig(port=0, request_timeout_s=15.0))
    srv.start()
    yield srv
    srv.stop()


def fast_client(url: str, **kwargs) -> PredictClient:
    kwargs.setdefault("backoff_base_s", 0.001)
    kwargs.setdefault("retry_seed", 0)
    return PredictClient(url, **kwargs)


class TestRetries:
    def test_recovers_from_transient_drops_with_exact_result(self, server):
        client = fast_client(server.url, max_retries=3)
        fault = ConnectionDropFault(drops=2)
        client.pre_request_hook = fault
        images = sample_images(2, seed=40)
        serial = server.registry.get("net4").engine.predict_logits(images)
        result = client.predict(images[0], model="net4")
        np.testing.assert_array_equal(result.logits, serial[0])
        assert fault.calls == 3  # two drops + the attempt that got through

    def test_batch_and_health_endpoints_retry_too(self, server):
        client = fast_client(server.url, max_retries=2)
        client.pre_request_hook = ConnectionDropFault(drops=1)
        assert client.healthz()["status"] == "ok"
        images = sample_images(3, seed=41)
        serial = server.registry.get("net4").engine.predict_logits(images)
        client.pre_request_hook = ConnectionDropFault(drops=2)
        result = client.predict_batch(images)
        np.testing.assert_array_equal(result.logits, serial)

    def test_exhausted_retries_raise_typed_error(self):
        # No server needed: the hook fails every attempt before any socket I/O.
        client = fast_client("http://127.0.0.1:9", max_retries=2)
        fault = ConnectionDropFault(drops=100)
        client.pre_request_hook = fault
        with pytest.raises(RetriesExhaustedError) as excinfo:
            client.healthz()
        assert isinstance(excinfo.value, ServeError)
        assert fault.calls == 3  # initial attempt + 2 retries, then give up
        assert isinstance(excinfo.value.__cause__, ConnectionError)

    def test_zero_retries_fails_on_first_drop(self):
        client = fast_client("http://127.0.0.1:9", max_retries=0)
        fault = ConnectionDropFault(drops=1)
        client.pre_request_hook = fault
        with pytest.raises(RetriesExhaustedError):
            client.healthz()
        assert fault.calls == 1

    def test_deadline_cuts_backoff_short(self, server):
        # Backoff would wait 5s; a 50 ms deadline must abort immediately with
        # the deadline error instead of sleeping through it.
        client = PredictClient(
            server.url, max_retries=5, backoff_base_s=5.0, retry_seed=0
        )
        client.pre_request_hook = ConnectionDropFault(drops=100)
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            client.predict(sample_images(1)[0], deadline_ms=50.0)
        assert time.monotonic() - start < 1.0

    def test_retry_reopens_connection_after_server_restart_style_drop(self, server):
        # A drop mid-session closes the keep-alive connection; the retry must
        # succeed on a fresh one rather than reusing the poisoned socket.
        client = fast_client(server.url, max_retries=2)
        images = sample_images(1, seed=42)
        serial = server.registry.get("net4").engine.predict_logits(images)
        np.testing.assert_array_equal(
            client.predict(images[0]).logits, serial[0]
        )
        client.pre_request_hook = ConnectionDropFault(drops=1)
        np.testing.assert_array_equal(
            client.predict(images[0]).logits, serial[0]
        )

    def test_backoff_delay_growth_and_cap(self):
        client = PredictClient(
            "http://127.0.0.1:9", backoff_base_s=0.1, backoff_max_s=0.5,
            backoff_jitter=0.0, retry_seed=0,
        )
        assert client._backoff_delay(0) == pytest.approx(0.1)
        assert client._backoff_delay(1) == pytest.approx(0.2)
        assert client._backoff_delay(10) == pytest.approx(0.5)  # capped

    def test_jitter_stays_within_configured_band(self):
        client = PredictClient(
            "http://127.0.0.1:9", backoff_base_s=0.1, backoff_jitter=0.25,
            retry_seed=7,
        )
        for attempt in range(5):
            delay = client._backoff_delay(attempt)
            base = min(client.backoff_max_s, 0.1 * 2.0 ** attempt)
            assert base <= delay <= base * 1.25

    def test_invalid_retry_config_rejected(self):
        with pytest.raises(ValueError):
            PredictClient("http://127.0.0.1:9", max_retries=-1)
        with pytest.raises(ValueError):
            PredictClient("http://127.0.0.1:9", backoff_base_s=-0.1)


class TestMidResponseRetry:
    """A connection torn down *after* headers but *before* the body is read
    (worker crash / server restart mid-response) must be retried like any
    other transport failure — every endpoint is a pure function of its
    request, so replaying is always safe."""

    def test_mid_response_reset_is_retried_with_exact_result(self, server):
        client = fast_client(server.url, max_retries=2)
        fault = ConnectionDropFault(drops=1, exc_type=ConnectionResetError)
        client.mid_response_hook = fault
        images = sample_images(1, seed=60)
        serial = server.registry.get("net4").engine.predict_logits(images)
        result = client.predict(images[0], model="net4")
        np.testing.assert_array_equal(result.logits, serial[0])
        assert fault.dropped == 1  # headers arrived, body was torn off once

    def test_mid_response_broken_pipe_is_retried(self, server):
        client = fast_client(server.url, max_retries=1)
        fault = ConnectionDropFault(drops=1, exc_type=BrokenPipeError)
        client.mid_response_hook = fault
        assert client.healthz()["status"] == "ok"
        assert fault.dropped == 1

    def test_mid_response_drops_exhaust_retries_with_typed_error(self, server):
        client = fast_client(server.url, max_retries=1)
        fault = ConnectionDropFault(drops=100, exc_type=ConnectionResetError)
        client.mid_response_hook = fault
        with pytest.raises(RetriesExhaustedError):
            client.healthz()
        assert fault.dropped == 2  # initial attempt + 1 retry


class TestHedging:
    def test_slow_primary_is_hedged_and_first_response_wins(self, server):
        client = fast_client(server.url, max_retries=0, hedge_after_s=0.05)
        slow_once = ConnectionDropFault(drops=0)  # counts calls, never raises

        def stall_first_attempt():
            slow_once.calls += 1
            if slow_once.calls == 1:
                time.sleep(1.0)  # primary outlives the hedge budget

        client.pre_request_hook = stall_first_attempt
        images = sample_images(1, seed=61)
        serial = server.registry.get("net4").engine.predict_logits(images)
        start = time.monotonic()
        result = client.predict(images[0], model="net4")
        elapsed = time.monotonic() - start
        np.testing.assert_array_equal(result.logits, serial[0])
        assert client.hedges_fired == 1
        assert elapsed < 1.0  # the hedge answered; nobody waited for the stall

    def test_fast_primary_never_fires_a_hedge(self, server):
        client = fast_client(server.url, max_retries=0, hedge_after_s=5.0)
        assert client.healthz()["status"] == "ok"
        assert client.hedges_fired == 0

    def test_hedged_request_surfaces_first_error_when_all_fail(self):
        client = fast_client("http://127.0.0.1:9", max_retries=0, hedge_after_s=10.0)
        client.pre_request_hook = ConnectionDropFault(drops=100)
        with pytest.raises(RetriesExhaustedError):
            client.healthz()

    def test_invalid_hedge_budget_rejected(self):
        with pytest.raises(ValueError):
            PredictClient("http://127.0.0.1:9", hedge_after_s=0.0)
