"""The serving acceptance load test (tier-1 sized, no marker).

Drives 512 concurrent single-image HTTP requests against a Table-1 config
and verifies, per the acceptance criteria:

* every per-request logits vector **exactly** matches
  ``InferenceEngine.predict_logits`` run serially (float64 survives the
  JSON round-trip bit-for-bit);
* zero requests are lost or mis-ordered — each response is checked against
  the serial row for *its own* image index;
* when the queue bound is exceeded, shed requests receive explicit 503s;
* the ``/metrics`` counters reconcile: ``accepted + shed == offered``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.serve import (
    BatcherConfig,
    ModelRegistry,
    ModelServer,
    PredictClient,
    ServeHTTPError,
    ServerConfig,
)

from tests.serve.conftest import build_small_network, sample_images

TOTAL_REQUESTS = 512
CLIENT_THREADS = 16


def test_load_512_concurrent_requests_parity_and_reconciliation():
    model = build_small_network(4)  # Table-1 config 4, test-scaled width
    registry = ModelRegistry(
        BatcherConfig(max_batch_size=32, max_wait_s=0.002, queue_depth=1024)
    )
    entry = registry.register("net4", model)
    images = sample_images(TOTAL_REQUESTS, seed=40)
    serial = entry.engine.predict_logits(images)

    results: "dict[int, np.ndarray]" = {}
    failures: "list[tuple[int, Exception]]" = []
    lock = threading.Lock()
    next_index = iter(range(TOTAL_REQUESTS))

    with ModelServer(registry, ServerConfig(port=0, request_timeout_s=60.0)) as server:
        client = PredictClient(server.url, timeout_s=60.0)

        def worker():
            while True:
                with lock:
                    i = next(next_index, None)
                if i is None:
                    return
                try:
                    logits = client.predict(images[i], model="net4").logits
                    with lock:
                        results[i] = logits
                except Exception as exc:
                    with lock:
                        failures.append((i, exc))

        threads = [threading.Thread(target=worker) for _ in range(CLIENT_THREADS)]
        start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(300)
        elapsed = time.perf_counter() - start
        metrics = client.metrics()["models"]["net4"]

    # -- zero lost, zero failed, none mis-ordered --------------------------
    assert not failures, f"{len(failures)} requests failed, first: {failures[0]}"
    assert sorted(results) == list(range(TOTAL_REQUESTS))
    for i in range(TOTAL_REQUESTS):
        np.testing.assert_array_equal(
            results[i], serial[i],
            err_msg=f"request {i}: served logits differ from serial engine",
        )

    # -- counters reconcile -------------------------------------------------
    req = metrics["requests"]
    assert req["offered"] == TOTAL_REQUESTS
    assert req["accepted"] + req["shed"] == req["offered"]
    assert req["shed"] == 0  # queue_depth=1024 never overflows here
    assert req["completed"] == TOTAL_REQUESTS
    assert req["expired"] == 0 and req["failed"] == 0 and req["cancelled"] == 0

    # -- micro-batching actually engaged under concurrent load -------------
    batches = metrics["batches"]
    assert batches["count"] < TOTAL_REQUESTS, "no request coalescing ever happened"
    assert batches["mean_size"] > 1.0
    assert metrics["latency_s"]["p99"] > 0.0
    assert elapsed < 240.0  # sanity: the load test must stay tier-1 sized


def test_load_shedding_gives_explicit_503s_and_reconciles():
    """Overflowing the high-water mark sheds with 503 + shed flag, and the
    offered/accepted/shed accounting stays exact."""
    queue_depth = 8
    overflow = 24
    registry = ModelRegistry(
        BatcherConfig(max_batch_size=8, max_wait_s=0.001, queue_depth=queue_depth)
    )
    entry = registry.register("net4", build_small_network(4))
    images = sample_images(queue_depth + overflow, seed=41)
    serial = entry.engine.predict_logits(images)

    with ModelServer(registry, ServerConfig(port=0, request_timeout_s=30.0)) as server:
        client = PredictClient(server.url, timeout_s=30.0)
        # Wedge the batcher so exactly queue_depth requests can be admitted.
        entry.batcher.pause()
        statuses: "dict[int, str]" = {}
        results: "dict[int, np.ndarray]" = {}
        lock = threading.Lock()

        def call(i: int):
            try:
                logits = client.predict(images[i]).logits
                with lock:
                    statuses[i] = "ok"
                    results[i] = logits
            except ServeHTTPError as exc:
                with lock:
                    statuses[i] = "shed" if exc.shed else f"error:{exc.status}"

        # Admit exactly queue_depth requests first, so shedding is
        # deterministic rather than racing the dequeue loop.
        admitted = list(range(queue_depth))
        threads = [threading.Thread(target=call, args=(i,)) for i in admitted]
        for t in threads:
            t.start()
        for _ in range(1000):
            if entry.batcher.queue_depth == queue_depth:
                break
            time.sleep(0.005)
        assert entry.batcher.queue_depth == queue_depth

        # Every further request must be shed with an explicit 503.
        rest = list(range(queue_depth, queue_depth + overflow))
        more = [threading.Thread(target=call, args=(i,)) for i in rest]
        for t in more:
            t.start()
        for t in more:
            t.join(60)

        entry.batcher.resume()
        for t in threads:
            t.join(60)
        metrics = client.metrics()["models"]["net4"]

    assert [statuses[i] for i in rest] == ["shed"] * overflow
    assert [statuses[i] for i in admitted] == ["ok"] * queue_depth
    for i in admitted:  # the admitted requests still answer exactly
        np.testing.assert_array_equal(results[i], serial[i])

    req = metrics["requests"]
    assert req["offered"] == queue_depth + overflow
    assert req["accepted"] == queue_depth
    assert req["shed"] == overflow
    assert req["accepted"] + req["shed"] == req["offered"]
    assert req["completed"] == queue_depth
