"""Tier-1 integration tests for the supervised multi-process serving tier.

Every test runs a real worker pool (fork start method) against the scaled
Table-1 config-4 network and holds the cluster to the engine's bitwise
standard: logits through shared-memory plans and worker processes must
equal the in-process plan exactly.  The fault-injection drills live in
``test_cluster_chaos.py`` (``chaos`` marker, excluded from tier-1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, QuotaExceededError, UnknownModelError
from repro.infer import InferenceEngine
from repro.infer.plan import PlanConfig
from repro.serve import ClusterConfig, ClusterService, ModelServer, ServerConfig
from repro.serve.client import PredictClient, ServeHTTPError

from tests.serve.conftest import build_small_network, sample_images

FAST = dict(heartbeat_interval_s=0.05, restart_backoff_base_s=0.01, dispatch_wait_s=0.02)


@pytest.fixture()
def cluster():
    """A started 2-worker ClusterService serving net4; stopped on teardown."""
    model = build_small_network(4)
    service = ClusterService(ClusterConfig(workers=2, **FAST))
    entry = service.register("net4", model)
    service.start()
    yield service, entry, model
    service.stop(timeout=10.0)


def _resolve(futures, timeout=15):
    return np.stack([f.result(timeout=timeout) for f in futures])


@pytest.mark.timeout(90)
class TestClusterRoundTrip:
    def test_predictions_bitwise_match_in_process_engine(self, cluster):
        service, entry, model = cluster
        images = sample_images(6, seed=11)
        expected = entry.engine.predict_logits(images)
        got = _resolve([service.submit(img) for img in images])
        np.testing.assert_array_equal(got, expected)

    def test_priority_and_tenant_traffic_share_the_pool(self, cluster):
        service, entry, _ = cluster
        images = sample_images(4, seed=12)
        expected = entry.engine.predict_logits(images)
        futures = [
            service.submit(img, priority=("batch" if i % 2 else "interactive"), tenant="alice")
            for i, img in enumerate(images)
        ]
        np.testing.assert_array_equal(_resolve(futures), expected)
        priorities = service.metrics_snapshot()["net4"]["priorities"]
        assert priorities["interactive"]["completed"] == 2
        assert priorities["batch"]["completed"] == 2

    def test_unknown_priority_is_rejected_at_submit(self, cluster):
        service, _, _ = cluster
        with pytest.raises(ConfigurationError, match="priority"):
            service.submit(sample_images(1, seed=0)[0], priority="bulk")

    def test_tenant_quota_enforced_across_the_cluster(self):
        model = build_small_network(2)
        service = ClusterService(
            ClusterConfig(workers=1, tenant_rate=0.001, tenant_burst=2, **FAST)
        )
        service.register("net2", model)
        service.start()
        try:
            images = sample_images(3, seed=13)
            first = [service.submit(img, tenant="greedy") for img in images[:2]]
            with pytest.raises(QuotaExceededError, match="greedy"):
                service.submit(images[2], tenant="greedy")
            _resolve(first)  # quota rejects the third, never the admitted two
        finally:
            service.stop()


@pytest.mark.timeout(90)
class TestHotRefresh:
    def test_refresh_propagates_new_weights_to_every_worker(self, cluster):
        service, entry, model = cluster
        images = sample_images(4, seed=21)
        before = _resolve([service.submit(img) for img in images])
        np.testing.assert_array_equal(before, entry.engine.predict_logits(images))

        for p in model.parameters():
            p.data *= 1.01
        assert service.refresh("net4") > 0
        after = _resolve([service.submit(img) for img in images])
        np.testing.assert_array_equal(after, entry.engine.predict_logits(images))
        assert not np.array_equal(before, after)
        assert service.metrics_snapshot()["net4"]["cluster"]["generation"] == 2

    def test_queued_requests_survive_a_refresh(self, cluster):
        """pause → drain → republish never drops admitted requests."""
        service, entry, model = cluster
        images = sample_images(8, seed=22)
        futures = [service.submit(img) for img in images]
        service.refresh("net4")
        got = _resolve(futures)
        # every request saw a complete generation, old or new, never a mix
        old = entry.engine.predict_logits(images)  # refresh with unchanged weights
        np.testing.assert_array_equal(got, old)


@pytest.mark.timeout(90)
class TestVariants:
    def test_multi_variant_registration_serves_primary(self):
        model = build_small_network(4)
        engines = {
            "primary": InferenceEngine(model),
            "int8": InferenceEngine(model, config=PlanConfig(dtype="int8")),
        }
        service = ClusterService(ClusterConfig(workers=1, **FAST))
        entry = service.register("net4", engines=engines)
        service.start()
        try:
            images = sample_images(3, seed=31)
            got = _resolve([service.submit(img) for img in images])
            np.testing.assert_array_equal(got, engines["primary"].predict_logits(images))
            gauge = service.metrics_snapshot()["net4"]["cluster"]
            assert gauge["variants"] == ["primary", "int8"]
        finally:
            service.stop()


class TestRegistrySurface:
    """ClusterService must duck-type ModelRegistry for the HTTP layer."""

    def test_lookup_and_errors_match_registry_semantics(self):
        service = ClusterService(ClusterConfig(workers=1, **FAST))
        entry = service.register("net2", build_small_network(2))
        assert service.get("net2") is entry is service.get(None)
        assert service.names() == ["net2"] and "net2" in service and len(service) == 1
        with pytest.raises(UnknownModelError, match="known models"):
            service.get("nope")
        with pytest.raises(ConfigurationError, match="already registered"):
            service.register("net2", build_small_network(2))
        with pytest.raises(ConfigurationError, match="exactly one"):
            service.register("net3")
        service.stop()  # never started: must still shut down cleanly

    def test_metrics_snapshot_carries_cluster_gauges(self):
        service = ClusterService(ClusterConfig(workers=1, **FAST))
        service.register("net2", build_small_network(2))
        snap = service.metrics_snapshot()["net2"]
        cluster = snap["cluster"]
        assert cluster["generation"] == 1
        assert cluster["breaker"]["state"] == "closed"
        assert cluster["admission"]["level"] == 0
        assert snap["workers_lifecycle"] == {"deaths": 0, "restarts": 0, "redispatched": 0}
        assert "plan" in snap
        service.stop()


@pytest.mark.timeout(120)
class TestHTTPFrontEnd:
    """ModelServer speaks the same wire protocol over a cluster backend."""

    @pytest.fixture()
    def server(self):
        model = build_small_network(4)
        service = ClusterService(
            ClusterConfig(workers=2, tenant_rate=0.001, tenant_burst=1, **FAST)
        )
        service.register("net4", model)
        server = ModelServer(service, ServerConfig(port=0)).start()
        client = PredictClient(f"http://127.0.0.1:{server.port}", timeout_s=30)
        yield server, client, service
        client.close()
        server.stop()

    def test_predict_and_metrics_over_http(self, server):
        _, client, service = server
        image = sample_images(1, seed=41)[0]
        expected = service.get("net4").engine.predict_logits(image[None])[0]
        result = client.predict(image)
        np.testing.assert_array_equal(result.logits, expected)
        assert result.predictions == int(np.argmax(expected))
        metrics = client.metrics()
        cluster = metrics["models"]["net4"]["cluster"]
        assert cluster["breaker"]["state"] == "closed"
        assert cluster["supervisor"]["alive"] == 2
        assert "drain_timed_out" in metrics["server"]

    def test_priority_rides_the_wire(self, server):
        _, client, service = server
        image = sample_images(1, seed=42)[0]
        out = client._request(
            "/v1/predict", {"image": image.tolist(), "priority": "batch"}
        )
        assert out["prediction"] == int(
            np.argmax(service.get("net4").engine.predict_logits(image[None])[0])
        )
        with pytest.raises(ServeHTTPError) as info:
            client._request("/v1/predict", {"image": image.tolist(), "priority": 7})
        assert info.value.status == 400

    def test_tenant_quota_maps_to_429(self, server):
        _, client, _ = server
        image = sample_images(1, seed=43)[0].tolist()
        client._request("/v1/predict", {"image": image, "tenant": "greedy"})
        with pytest.raises(ServeHTTPError) as info:
            client._request("/v1/predict", {"image": image, "tenant": "greedy"})
        assert info.value.status == 429
        assert info.value.payload["quota"] is True
