"""Deterministic unit tests for the cluster's control-plane pieces.

Everything here runs single-process against injected fake clocks: circuit
breaker lifecycle, token buckets, admission ladder, config validation and
the generational plan store.  The multi-process integration and chaos
drills live in ``test_cluster.py`` / ``test_cluster_chaos.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import (
    ClusterError,
    ConfigurationError,
    QueueFullError,
    QuotaExceededError,
)
from repro.serve.cluster import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    CircuitBreaker,
    ClusterConfig,
    ShmPlanStore,
    TokenBucket,
)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestCircuitBreaker:
    def test_trips_only_past_budget_within_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(restart_budget=2, window_s=10.0, clock=clock)
        assert breaker.record_restart() is False
        assert breaker.record_restart() is False
        assert breaker.state == CLOSED and breaker.allow()
        assert breaker.record_restart() is True  # third death in window
        assert breaker.state == OPEN and breaker.trips == 1

    def test_window_expiry_forgives_old_deaths(self):
        clock = FakeClock()
        breaker = CircuitBreaker(restart_budget=1, window_s=5.0, clock=clock)
        breaker.record_restart()
        clock.advance(6.0)  # first death ages out of the window
        assert breaker.record_restart() is False
        assert breaker.restarts_in_window() == 1

    def test_open_rejects_with_countdown_then_half_opens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(restart_budget=1, window_s=30.0, open_s=2.0, clock=clock)
        breaker.record_restart(), breaker.record_restart()
        assert breaker.state == OPEN
        assert not breaker.allow() and breaker.rejections == 1
        clock.advance(1.5)
        assert breaker.retry_after_s() == pytest.approx(0.5)
        clock.advance(0.5)
        assert breaker.state == HALF_OPEN
        assert breaker.allow() and breaker.retry_after_s() == 0.0

    def test_probe_successes_close_and_clear_the_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            restart_budget=1, window_s=30.0, open_s=1.0, half_open_probes=2, clock=clock
        )
        breaker.record_restart(), breaker.record_restart()
        clock.advance(1.0)
        breaker.record_result(True)
        assert breaker.state == HALF_OPEN  # one of two probes in
        breaker.record_result(True)
        assert breaker.state == CLOSED
        assert breaker.restarts_in_window() == 0  # fresh budget after recovery

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(restart_budget=1, window_s=30.0, open_s=1.0, clock=clock)
        breaker.record_restart(), breaker.record_restart()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        breaker.record_result(False)
        assert breaker.state == OPEN and breaker.trips == 2

    def test_death_during_half_open_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(restart_budget=1, window_s=30.0, open_s=1.0, clock=clock)
        breaker.record_restart(), breaker.record_restart()
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN
        assert breaker.record_restart() is True  # probe worker died
        assert breaker.state == OPEN

    def test_results_ignored_while_closed(self):
        breaker = CircuitBreaker(clock=FakeClock())
        breaker.record_result(False)
        assert breaker.state == CLOSED

    def test_snapshot_shape(self):
        snap = CircuitBreaker(clock=FakeClock()).snapshot()
        assert snap["state"] == CLOSED
        assert set(snap) >= {"trips", "rejections", "restarts_in_window", "retry_after_s"}


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True, True, True, False]
        clock.advance(0.5)  # 1 token refilled
        assert bucket.try_take() and not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def _controller(self, clock, **overrides):
        defaults = dict(
            queue_depth=10,
            overload_enter_fraction=0.5,
            overload_exit_fraction=0.2,
            overload_dwell_s=1.0,
        )
        defaults.update(overrides)
        return AdmissionController(ClusterConfig(**defaults), clock=clock)

    def test_unknown_priority_rejected(self):
        admission = self._controller(FakeClock())
        with pytest.raises(ConfigurationError, match="priority"):
            admission.admit("bulk", None, queue_depth=0, capacity=10)

    def test_queue_bound_sheds_every_class(self):
        admission = self._controller(FakeClock())
        for priority in ("interactive", "batch"):
            with pytest.raises(QueueFullError):
                admission.admit(priority, None, queue_depth=10, capacity=10)
        assert admission.snapshot()["shed_by_priority"] == {"interactive": 1, "batch": 1}

    def test_tenant_quota_is_isolated_per_tenant(self):
        clock = FakeClock()
        admission = self._controller(clock, tenant_rate=1.0, tenant_burst=2)
        admission.admit("interactive", "alice", 0, 10)
        admission.admit("interactive", "alice", 0, 10)
        with pytest.raises(QuotaExceededError, match="alice"):
            admission.admit("interactive", "alice", 0, 10)
        # bob has his own bucket; anonymous traffic has none at all
        admission.admit("interactive", "bob", 0, 10)
        admission.admit("interactive", None, 0, 10)
        clock.advance(1.0)  # alice refills one token
        admission.admit("interactive", "alice", 0, 10)
        assert admission.snapshot()["quota_rejected"] == 1

    def test_ladder_needs_sustained_overload(self):
        clock = FakeClock()
        admission = self._controller(clock)
        assert admission.observe(queue_depth=8, capacity=10) == 0  # burst: no dwell yet
        clock.advance(0.5)
        assert admission.observe(8, 10) == 0
        clock.advance(0.5)
        assert admission.observe(8, 10) == 1  # one dwell: shed batch
        with pytest.raises(QueueFullError, match="batch"):
            admission.admit("batch", None, 8, 10)
        admission.admit("interactive", None, 8, 10)  # interactive keeps flowing
        clock.advance(1.0)
        assert admission.observe(8, 10) == 2  # two dwells: downshift

    def test_ladder_level_two_downshifts_to_cheapest_variant(self):
        clock = FakeClock()
        admission = self._controller(clock)
        variants = ("primary", "sparse", "int8")
        assert admission.choose_variant(variants) == "primary"
        admission.observe(9, 10)
        clock.advance(2.0)
        admission.observe(9, 10)
        assert admission.choose_variant(variants) == "int8"
        assert admission.choose_variant(("only",)) == "only"  # nothing cheaper exists
        assert admission.snapshot()["downshifted"] == 1

    def test_hysteresis_resets_only_below_exit_fraction(self):
        clock = FakeClock()
        admission = self._controller(clock)
        admission.observe(8, 10)
        clock.advance(2.0)
        assert admission.observe(4, 10) == 2  # 0.4 fill: between exit and enter — still hot
        assert admission.observe(2, 10) == 0  # 0.2 fill: ladder resets
        clock.advance(5.0)
        assert admission.observe(8, 10) == 0  # overload clock restarted from zero


class TestClusterConfig:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": 0},
            {"start_method": "forkserver"},
            {"queue_depth": 0},
            {"max_inflight_per_worker": 0},
            {"request_retries": -1},
            {"heartbeat_timeout_s": 0.0},
            {"restart_budget": 0},
            {"breaker_half_open_probes": 0},
            {"tenant_rate": -1.0},
            {"tenant_burst": 0},
            {"overload_exit_fraction": 0.9, "overload_enter_fraction": 0.5},
            {"service_delay_s": -0.1},
        ],
    )
    def test_rejects_invalid_values(self, overrides):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**overrides)

    def test_defaults_are_valid_and_frozen(self):
        config = ClusterConfig()
        assert config.workers == 2 and config.chaos == ()
        with pytest.raises(AttributeError):
            config.workers = 4


class TestShmPlanStore:
    def _payload(self, fill: float):
        return {"ops": [], "out_slot": 0, "dtype": np.dtype(np.float64),
                "intq": None, "weights": np.full(2048, fill)}

    def test_generations_increment_and_previous_stays_alive(self):
        store = ShmPlanStore()
        try:
            first = store.publish({"primary": self._payload(1.0)})
            second = store.publish({"primary": self._payload(2.0)})
            assert (first.generation, second.generation) == (1, 2)
            assert store.current is second
            # the superseded segment is queued, not unlinked: attach still works
            from repro.utils.shm import load_object

            obj, seg = load_object(first.handles["primary"])
            assert obj["weights"][0] == 1.0
            seg.close()
        finally:
            store.close()

    def test_retire_unlinks_only_superseded_generations(self):
        store = ShmPlanStore()
        try:
            first = store.publish({"primary": self._payload(1.0)})
            store.publish({"primary": self._payload(2.0)})
            store.retire(first.generation)
            from repro.errors import SharedMemoryError
            from repro.utils.shm import load_object

            with pytest.raises(SharedMemoryError, match="missing"):
                load_object(first.handles["primary"])
            obj, seg = load_object(store.current.handles["primary"])
            assert obj["weights"][0] == 2.0
            seg.close()
        finally:
            store.close()

    def test_empty_publish_and_closed_store_raise(self):
        store = ShmPlanStore()
        with pytest.raises(ClusterError, match="empty"):
            store.publish({})
        store.close()
        with pytest.raises(ClusterError, match="closed"):
            store.publish({"primary": self._payload(0.0)})
