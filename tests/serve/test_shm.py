"""Shared-memory object publishing: hoisting, checksums, zero-copy views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SharedMemoryError
from repro.infer import InferenceEngine
from repro.infer.plan import ExecutionContext, execute_ops
from repro.testing import SharedMemoryCorruptionFault
from repro.utils.shm import load_object, publish_object

from tests.serve.conftest import build_small_network, sample_images


def _cleanup(segment):
    try:
        segment.unlink()
    except FileNotFoundError:
        pass
    segment.close()


class TestPublishLoad:
    def test_round_trip_preserves_structure_and_values(self):
        obj = {
            "big": np.arange(4096, dtype=np.float64).reshape(64, 64),
            "small": np.array([1.0, 2.0]),
            "nested": {"k": [np.full((512,), 7, dtype=np.int64), "text", 3]},
        }
        handle, segment = publish_object(obj, min_bytes=1024)
        try:
            loaded, attached = load_object(handle)
            np.testing.assert_array_equal(loaded["big"], obj["big"])
            np.testing.assert_array_equal(loaded["small"], obj["small"])
            np.testing.assert_array_equal(loaded["nested"]["k"][0], obj["nested"]["k"][0])
            assert loaded["nested"]["k"][1:] == ["text", 3]
            attached.close()
        finally:
            _cleanup(segment)

    def test_large_arrays_hoisted_small_ones_inline(self):
        obj = {"big": np.zeros(1024, dtype=np.float64), "small": np.zeros(4)}
        handle, segment = publish_object(obj, min_bytes=1024)
        try:
            # exactly one array crosses the hoist threshold (8 KiB vs 32 B)
            assert len(handle.arrays) == 1
            assert handle.arrays[0][1] == (1024,)
        finally:
            _cleanup(segment)

    def test_hoisted_views_are_read_only_and_zero_copy(self):
        big = np.arange(2048, dtype=np.float64)
        handle, segment = publish_object({"w": big}, min_bytes=1024)
        try:
            loaded, attached = load_object(handle)
            assert not loaded["w"].flags.writeable
            with pytest.raises(ValueError):
                loaded["w"][0] = -1.0
            # zero-copy: the view addresses the shared pages, not a copy
            assert loaded["w"].base is not None
            attached.close()
        finally:
            _cleanup(segment)

    def test_missing_segment_raises_typed_error(self):
        handle, segment = publish_object({"w": np.zeros(2048)})
        _cleanup(segment)
        with pytest.raises(SharedMemoryError, match="missing"):
            load_object(handle)


class TestChecksum:
    def test_corruption_detected_on_attach(self):
        handle, segment = publish_object({"w": np.ones(2048, dtype=np.float64)})
        try:
            fault = SharedMemoryCorruptionFault(flips=4, seed=7)
            offsets = fault.apply(handle)
            assert fault.applied == 1 and len(offsets) == 4
            with pytest.raises(SharedMemoryError, match="checksum"):
                load_object(handle)
        finally:
            _cleanup(segment)

    def test_verify_false_skips_the_check(self):
        handle, segment = publish_object({"w": np.ones(2048, dtype=np.float64)})
        try:
            SharedMemoryCorruptionFault(flips=1, seed=0).apply(handle)
            loaded, attached = load_object(handle, verify=False)
            assert loaded["w"].shape == (2048,)
            attached.close()
        finally:
            _cleanup(segment)


class TestPlanPayload:
    def test_published_plan_executes_bitwise(self):
        """A plan payload round-tripped through shared memory (read-only
        weight views included) must reproduce the source plan exactly."""
        engine = InferenceEngine(build_small_network(2))
        images = sample_images(4, seed=3)
        expected = engine.plan.execute(images, ExecutionContext())
        handle, segment = publish_object(engine.plan.payload())
        try:
            payload, attached = load_object(handle)
            got = execute_ops(
                payload["ops"], images, ExecutionContext(), payload["out_slot"], payload["dtype"]
            )
            np.testing.assert_array_equal(got, expected)
            attached.close()
        finally:
            _cleanup(segment)
