"""Model registry: routing, lifecycle, and quiesced hot weight refreshes."""

from __future__ import annotations

from concurrent.futures import wait

import numpy as np
import pytest

from repro.errors import ConfigurationError, UnknownModelError
from repro.infer import InferenceEngine
from repro.quant.qlayers import QConv2d
from repro.serve import BatcherConfig, ModelRegistry

from tests.serve.conftest import build_small_network, sample_images


def _mutate_versioned(model, delta=0.25):
    """Master-weight edit through the documented bump-version protocol."""
    layer = next(m for m in model.modules() if isinstance(m, QConv2d))
    layer.weight.data[...] += delta
    layer.weight.bump_version()


def _mutate_raw(model, delta=0.25):
    """In-place edit that bypasses the version counter (fingerprint path)."""
    layer = next(m for m in model.modules() if isinstance(m, QConv2d))
    layer.weight.data[...] += delta


class TestRegistration:
    def test_needs_exactly_one_of_model_or_engine(self):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.register("x")
        model = build_small_network(4)
        with pytest.raises(ConfigurationError):
            registry.register("x", model=model, engine=InferenceEngine(model))

    def test_duplicate_name_rejected(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        with pytest.raises(ConfigurationError):
            registry.register("net4", build_small_network(4))

    def test_unknown_model_lists_known(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        with pytest.raises(UnknownModelError, match="net4"):
            registry.get("nope")

    def test_default_model_requires_unique(self):
        registry = ModelRegistry()
        registry.register("a", build_small_network(4))
        assert registry.get(None).name == "a"
        registry.register("b", build_small_network(1))
        with pytest.raises(UnknownModelError):
            registry.get(None)

    def test_unregister(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        registry.unregister("net4")
        assert "net4" not in registry and len(registry) == 0
        with pytest.raises(UnknownModelError):
            registry.unregister("net4")

    def test_register_after_start_serves_immediately(self):
        registry = ModelRegistry().start()
        try:
            entry = registry.register("late", build_small_network(4))
            fut = registry.submit(sample_images(1)[0], model="late")
            np.testing.assert_array_equal(
                fut.result(timeout=10),
                entry.engine.predict_logits(sample_images(1))[0],
            )
        finally:
            registry.stop()


class TestRouting:
    def test_two_models_route_independently(self):
        registry = ModelRegistry(BatcherConfig(max_batch_size=4, max_wait_s=0.001))
        a = registry.register("net4", build_small_network(4))
        b = registry.register("net1", build_small_network(1))
        images = sample_images(10, seed=20)
        serial_a = a.engine.predict_logits(images)
        serial_b = b.engine.predict_logits(images)
        registry.start()
        try:
            futs_a = [registry.submit(img, model="net4") for img in images]
            futs_b = [registry.submit(img, model="net1") for img in images]
            for i, (fa, fb) in enumerate(zip(futs_a, futs_b)):
                np.testing.assert_array_equal(fa.result(timeout=10), serial_a[i])
                np.testing.assert_array_equal(fb.result(timeout=10), serial_b[i])
        finally:
            registry.stop()
        # Metrics are tracked per model.
        snap = registry.metrics_snapshot()
        assert snap["net4"]["requests"]["completed"] == 10
        assert snap["net1"]["requests"]["completed"] == 10


class TestHotWeightUpdates:
    def test_versioned_mutation_picked_up_transparently(self):
        """on_stale='refresh' + per-batch version check: no refresh() call
        needed for mutations that follow the bump-version protocol."""
        model = build_small_network(4)
        registry = ModelRegistry()
        entry = registry.register("net4", model)
        image = sample_images(1, seed=21)
        registry.start()
        try:
            before = registry.submit(image[0]).result(timeout=10)
            _mutate_versioned(model)
            after = registry.submit(image[0]).result(timeout=10)
        finally:
            registry.stop()
        assert not np.array_equal(before, after)
        np.testing.assert_array_equal(after, entry.engine.predict_logits(image)[0])

    def test_quiesced_refresh_catches_raw_mutation(self):
        """registry.refresh() pauses, fingerprints, rebuilds, resumes —
        catching .data edits the cheap per-batch check cannot see."""
        model = build_small_network(4)
        registry = ModelRegistry()
        entry = registry.register("net4", model)
        image = sample_images(1, seed=22)
        registry.start()
        try:
            before = registry.submit(image[0]).result(timeout=10)
            entry.batcher.join_idle(10)
            _mutate_raw(model)
            rebuilt = registry.refresh("net4")
            assert rebuilt >= 1
            after = registry.submit(image[0]).result(timeout=10)
        finally:
            registry.stop()
        assert not np.array_equal(before, after)

    def test_refresh_does_not_drop_queued_requests(self):
        model = build_small_network(4)
        registry = ModelRegistry(BatcherConfig(max_batch_size=4))
        entry = registry.register("net4", model)
        images = sample_images(8, seed=23)
        registry.start()
        try:
            entry.batcher.pause()
            futures = [registry.submit(img) for img in images]
            registry.refresh()  # pause → join inflight → refresh → resume
            wait(futures, timeout=10)
            assert all(f.exception() is None for f in futures)
        finally:
            registry.stop()
        assert entry.metrics.completed.value == 8
