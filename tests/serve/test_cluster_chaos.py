"""Chaos drills for the supervised serving cluster (``chaos`` marker).

Every drill injects a deterministic fault (:mod:`repro.testing.faults`) into
a real multi-process pool and asserts the recovery invariants the ISSUE
demands: **zero dropped accepted requests**, **bitwise-identical logits
across worker restarts**, and a circuit breaker that walks
trip → open → half-open → recover instead of burning restarts forever.

Excluded from tier-1 (see ``pytest.ini``); run by the serve-chaos CI job
with per-test SIGALRM watchdogs so a wedged pool aborts loudly.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import CircuitOpenError, QueueFullError
from repro.infer import InferenceEngine
from repro.infer.plan import PlanConfig
from repro.serve import ClusterConfig, ClusterService
from repro.testing import SharedMemoryCorruptionFault, WorkerCrashFault, WorkerHangFault

from tests.serve.conftest import build_small_network, sample_images

pytestmark = pytest.mark.chaos

FAST = dict(heartbeat_interval_s=0.05, restart_backoff_base_s=0.01, dispatch_wait_s=0.02)


def _serve(service, images, **kwargs):
    futures = [service.submit(img, **kwargs) for img in images]
    return np.stack([f.result(timeout=30) for f in futures])


def _await_state(breaker, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while breaker.state != state:
        if time.monotonic() > deadline:
            raise AssertionError(f"breaker never reached {state!r} (at {breaker.state!r})")
        time.sleep(0.02)


@pytest.mark.timeout(120)
def test_worker_crash_drops_nothing_and_restart_is_bitwise():
    """A SIGSEGV-style worker death mid-stream loses no accepted request,
    and the restarted worker serves bitwise-identical logits."""
    model = build_small_network(4)
    crash = WorkerCrashFault(on_request=3, fires=1)
    service = ClusterService(ClusterConfig(workers=2, chaos=(crash,), **FAST))
    entry = service.register("net4", model)
    service.start()
    try:
        images = sample_images(12, seed=51)
        expected = entry.engine.predict_logits(images)
        got = _serve(service, images)  # the crash strikes mid-stream
        np.testing.assert_array_equal(got, expected)
        assert crash.armed == 1
        # the same input after the restart reproduces its pre-crash logits
        replay = service.submit(images[0]).result(timeout=30)
        np.testing.assert_array_equal(replay, expected[0])
        lifecycle = service.metrics_snapshot()["net4"]["workers_lifecycle"]
        assert lifecycle["deaths"] == 1
        assert lifecycle["redispatched"] >= 1  # the in-flight victim was re-run
        # the monitor replaces the dead slot on its next tick (post-backoff)
        deadline = time.monotonic() + 10.0
        while service.metrics_snapshot()["net4"]["workers_lifecycle"]["restarts"] < 1:
            assert time.monotonic() < deadline, "dead worker slot was never respawned"
            time.sleep(0.02)
        while entry.supervisor.snapshot()["alive"] < 2:
            assert time.monotonic() < deadline, "pool never returned to full strength"
            time.sleep(0.02)
    finally:
        service.stop()


@pytest.mark.timeout(120)
def test_wedged_worker_is_detected_by_heartbeat_and_replaced():
    """A worker that stops answering (deadlock) is caught by the pong
    timeout, killed, and its in-flight request re-dispatched — the caller
    just sees correct logits, slower."""
    model = build_small_network(4)
    hang = WorkerHangFault(on_request=2, fires=1, hang_s=3600.0)
    service = ClusterService(
        ClusterConfig(workers=2, heartbeat_timeout_s=0.4, chaos=(hang,), **FAST)
    )
    entry = service.register("net4", model)
    service.start()
    try:
        images = sample_images(8, seed=52)
        got = _serve(service, images)
        np.testing.assert_array_equal(got, entry.engine.predict_logits(images))
        assert hang.armed == 1
        assert service.metrics_snapshot()["net4"]["workers_lifecycle"]["deaths"] == 1
    finally:
        service.stop()


@pytest.mark.timeout(120)
def test_breaker_trips_probes_half_open_and_recovers():
    """A crash loop exhausts the restart budget: the breaker opens (fast
    rejects with retry-after), half-opens after ``breaker_open_s``, and one
    successful probe restores the pool.  The request queued at trip time is
    served — accepted work survives even a breaker trip."""
    model = build_small_network(2)
    crash = WorkerCrashFault(on_request=2, fires=2)
    service = ClusterService(
        ClusterConfig(
            workers=1,
            restart_budget=1,
            breaker_open_s=0.5,
            chaos=(crash,),
            **FAST,
        )
    )
    entry = service.register("net2", model)
    breaker = entry.breaker
    service.start()
    try:
        images = sample_images(5, seed=53)
        expected = entry.engine.predict_logits(images)
        np.testing.assert_array_equal(
            service.submit(images[0]).result(timeout=30), expected[0]
        )
        # requests 2 and 3 each land on a worker's second predict → two
        # deaths; budget 1 → the second death trips the breaker with the
        # victim request still queued
        survivors = [service.submit(img) for img in images[1:3]]
        _await_state(breaker, "open")
        with pytest.raises(CircuitOpenError) as info:
            while True:  # the open window is short; hit it before it ends
                service.submit(images[3])
        assert info.value.retry_after_s <= 0.5
        # half-open probe serves the queued victim and closes the breaker
        got = np.stack([f.result(timeout=30) for f in survivors])
        np.testing.assert_array_equal(got, expected[1:3])
        _await_state(breaker, "closed")
        assert breaker.trips == 1
        # post-recovery serving is bitwise again
        np.testing.assert_array_equal(
            service.submit(images[4]).result(timeout=30), expected[4]
        )
    finally:
        service.stop()


@pytest.mark.timeout(120)
def test_corrupted_shared_memory_is_refused_then_republish_recovers():
    """Corrupted plan pages must never serve: respawning workers refuse the
    segment (checksum) and die fatal until the breaker opens; republishing a
    clean generation via refresh() lets the half-open probe recover."""
    model = build_small_network(2)
    service = ClusterService(
        ClusterConfig(workers=1, restart_budget=1, breaker_open_s=0.4, **FAST)
    )
    entry = service.register("net2", model)
    service.start()
    try:
        images = sample_images(2, seed=54)
        expected = entry.engine.predict_logits(images)
        np.testing.assert_array_equal(
            service.submit(images[0]).result(timeout=30), expected[0]
        )
        # poison the live generation, then kill the only worker: every
        # respawn attaches the corrupted pages, refuses them, and exits
        fault = SharedMemoryCorruptionFault(flips=16, seed=9)
        fault.apply(entry.store.current.handles["primary"])
        entry.supervisor.alive_workers()[0].process.kill()
        _await_state(entry.breaker, "open", timeout=20.0)
        assert service.metrics_snapshot()["net2"]["workers_lifecycle"]["deaths"] >= 2

        # republish clean pages (weights unchanged) — the next half-open
        # probe attaches generation 2 and serving resumes bitwise
        service.refresh("net2")
        _await_state(entry.breaker, "half_open")  # open window must lapse first
        np.testing.assert_array_equal(
            service.submit(images[1]).result(timeout=30), expected[1]
        )
        _await_state(entry.breaker, "closed")
        assert entry.store.current.generation == 2
    finally:
        service.stop()


@pytest.mark.timeout(120)
def test_overload_ladder_sheds_batch_then_downshifts_before_collapse():
    """Sustained overload walks the degradation ladder: batch traffic is
    shed with a typed error while every admitted request still completes,
    and once level 2 is reached new dispatches downshift to the cheapest
    variant instead of rejecting."""
    model = build_small_network(2)
    engines = {
        "primary": InferenceEngine(model),
        "int8": InferenceEngine(model, config=PlanConfig(dtype="int8")),
    }
    service = ClusterService(
        ClusterConfig(
            workers=1,
            queue_depth=10,
            service_delay_s=0.08,
            overload_enter_fraction=0.5,
            overload_exit_fraction=0.1,
            overload_dwell_s=0.1,
            **FAST,
        )
    )
    entry = service.register("net2", engines=engines)
    service.start()
    try:
        images = sample_images(4, seed=55)
        primary = engines["primary"].predict_logits(images)
        cheap = engines["int8"].predict_logits(images)
        admitted, shed = [], 0
        for i in range(40):
            img = images[i % len(images)]
            try:
                future = service.submit(
                    img, priority=("batch" if i % 2 else "interactive")
                )
                admitted.append((i % len(images), future))
            except QueueFullError:
                shed += 1
        assert shed > 0  # the queue bound held instead of collapsing
        for index, future in admitted:  # zero drops among admitted work
            row = future.result(timeout=60)
            assert np.array_equal(row, primary[index]) or np.array_equal(
                row, cheap[index]
            ), "served logits match neither plan variant"
        snap = entry.admission.snapshot()
        assert snap["shed_by_priority"]["batch"] > 0
        assert snap["downshifted"] > 0  # level 2 reached: cheap variant served
    finally:
        service.stop()
