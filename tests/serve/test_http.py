"""HTTP front end: endpoints, error mapping, graceful drain-then-stop."""

from __future__ import annotations

import json
import socket
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.errors import ServerClosedError
from repro.serve import (
    BatcherConfig,
    ModelRegistry,
    ModelServer,
    PredictClient,
    ServeHTTPError,
    ServerConfig,
)

from tests.serve.conftest import build_small_network, sample_images


@pytest.fixture()
def server():
    registry = ModelRegistry(BatcherConfig(max_batch_size=8, max_wait_s=0.002))
    registry.register("net4", build_small_network(4))
    srv = ModelServer(registry, ServerConfig(port=0, request_timeout_s=15.0))
    srv.start()
    yield srv
    srv.stop()


def _post_raw(url: str, body: bytes, content_type: str = "application/json"):
    req = urllib.request.Request(
        f"{url}/v1/predict", data=body, headers={"Content-Type": content_type}, method="POST"
    )
    try:
        with urllib.request.urlopen(req, timeout=15) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, server):
        health = PredictClient(server.url).healthz()
        assert health == {"status": "ok", "models": ["net4"]}

    def test_index_lists_endpoints(self, server):
        with urllib.request.urlopen(f"{server.url}/", timeout=15) as resp:
            payload = json.loads(resp.read())
        assert "POST /v1/predict" in payload["endpoints"]

    def test_predict_single_exact(self, server):
        images = sample_images(3, seed=30)
        serial = server.registry.get("net4").engine.predict_logits(images)
        result = PredictClient(server.url).predict(images[1], model="net4")
        np.testing.assert_array_equal(result.logits, serial[1])
        assert result.predictions == int(np.argmax(serial[1]))

    def test_predict_without_model_name_single_registration(self, server):
        images = sample_images(1, seed=31)
        serial = server.registry.get("net4").engine.predict_logits(images)
        result = PredictClient(server.url).predict(images[0])
        np.testing.assert_array_equal(result.logits, serial[0])

    def test_predict_batch(self, server):
        images = sample_images(5, seed=32)
        serial = server.registry.get("net4").engine.predict_logits(images)
        result = PredictClient(server.url).predict_batch(images)
        np.testing.assert_array_equal(result.logits, serial)
        assert result.predictions == [int(v) for v in np.argmax(serial, axis=1)]

    def test_metrics_endpoint(self, server):
        client = PredictClient(server.url)
        client.predict(sample_images(1)[0])
        snap = client.metrics()
        assert snap["server"]["http_requests"] >= 1
        assert snap["models"]["net4"]["requests"]["completed"] >= 1


class TestErrorMapping:
    def test_unknown_path_404(self, server):
        with pytest.raises(ServeHTTPError) as err:
            PredictClient(server.url)._request("/v1/nope", {"x": 1})
        assert err.value.status == 404

    def test_unknown_model_404(self, server):
        with pytest.raises(ServeHTTPError) as err:
            PredictClient(server.url).predict(sample_images(1)[0], model="resnet999")
        assert err.value.status == 404
        assert "resnet999" in str(err.value)

    def test_invalid_json_400(self, server):
        status, payload = _post_raw(server.url, b"{not json")
        assert status == 400 and "JSON" in payload["error"]

    def test_non_object_body_400(self, server):
        status, payload = _post_raw(server.url, b"[1, 2, 3]")
        assert status == 400

    def test_missing_image_key_400(self, server):
        status, payload = _post_raw(server.url, b'{"model": "net4"}')
        assert status == 400 and "image" in payload["error"]

    def test_both_image_keys_400(self, server):
        status, _ = _post_raw(server.url, b'{"image": [], "images": []}')
        assert status == 400

    def test_bad_image_shape_400(self, server):
        with pytest.raises(ServeHTTPError) as err:
            PredictClient(server.url).predict(np.zeros((16, 16)))  # 2-D, not CHW
        assert err.value.status == 400

    def test_ragged_image_400(self, server):
        status, _ = _post_raw(server.url, b'{"image": [[1, 2], [3]]}')
        assert status == 400

    def test_bad_deadline_400(self, server):
        status, _ = _post_raw(
            server.url,
            json.dumps({"image": sample_images(1)[0].tolist(), "deadline_ms": -5}).encode(),
        )
        assert status == 400

    def test_queue_full_maps_to_503_with_shed_flag(self):
        registry = ModelRegistry(BatcherConfig(queue_depth=1, full_policy="reject"))
        entry = registry.register("net4", build_small_network(4))
        with ModelServer(registry, ServerConfig(port=0)) as srv:
            entry.batcher.pause()  # wedge the queue deterministically
            client = PredictClient(srv.url)
            image = sample_images(1)[0]
            ok_future_started = threading.Event()
            errors: "list[ServeHTTPError]" = []

            def first():
                ok_future_started.set()
                client.predict(image)  # occupies the single queue slot

            t = threading.Thread(target=first)
            t.start()
            ok_future_started.wait(5)
            # Wait until the first request actually occupies the queue.
            for _ in range(200):
                if entry.batcher.queue_depth >= 1:
                    break
                time.sleep(0.005)
            try:
                client.predict(image)
            except ServeHTTPError as exc:
                errors.append(exc)
            entry.batcher.resume()
            t.join(10)
            assert errors and errors[0].status == 503 and errors[0].shed
        assert entry.metrics.shed.value == 1


class TestGracefulShutdown:
    def test_stop_drains_inflight_http_requests(self):
        """stop() lets queued work finish and handlers answer — the HTTP
        half of the no-dropped-futures acceptance criterion."""
        registry = ModelRegistry(BatcherConfig(max_batch_size=4))
        entry = registry.register("net4", build_small_network(4))
        srv = ModelServer(registry, ServerConfig(port=0, request_timeout_s=15.0)).start()
        client = PredictClient(srv.url)
        images = sample_images(6, seed=33)
        serial = entry.engine.predict_logits(images)
        entry.batcher.pause()  # requests queue up; handlers block on futures
        results: "dict[int, np.ndarray]" = {}
        failures: "list[Exception]" = []

        def call(i: int):
            try:
                results[i] = client.predict(images[i]).logits
            except Exception as exc:  # pragma: no cover - failure diagnostics
                failures.append(exc)

        threads = [threading.Thread(target=call, args=(i,)) for i in range(len(images))]
        for t in threads:
            t.start()
        # Wait until every request is queued behind the paused batcher.
        for _ in range(600):
            if entry.batcher.queue_depth == len(images):
                break
            time.sleep(0.005)
        srv.stop(drain=True)  # drain overrides pause; all six must answer
        for t in threads:
            t.join(15)
        assert not failures, failures
        assert sorted(results) == list(range(len(images)))
        for i, logits in results.items():
            np.testing.assert_array_equal(logits, serial[i])
        assert entry.metrics.completed.value == len(images)
        assert entry.metrics.cancelled.value == 0

    def test_port_after_stop_raises(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        srv = ModelServer(registry, ServerConfig(port=0)).start()
        srv.stop()
        with pytest.raises(ServerClosedError):
            srv.port

    def test_stop_idempotent_and_context_manager(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        with ModelServer(registry, ServerConfig(port=0)) as srv:
            assert srv.running
        srv.stop()  # second stop is a no-op
        assert not srv.running


class TestDrainDeadline:
    """``stop(drain=True)`` is bounded by ONE ``drain_timeout_s`` deadline
    shared across every shutdown stage — a wedged handler thread cannot
    stretch it to the sum of per-stage timeouts — and hitting it is
    surfaced as the ``drain_timed_out`` counter in ``/metrics``."""

    def _wedge_handler(self, srv) -> "socket.socket":
        """Open a raw connection whose handler blocks forever: the request
        advertises a body that never arrives, so the handler thread sits in
        ``rfile.read`` until the socket dies — a faithful wedged handler."""
        sock = socket.create_connection(("127.0.0.1", srv.port), timeout=30)
        sock.sendall(
            b"POST /v1/predict HTTP/1.1\r\n"
            b"Host: localhost\r\nContent-Type: application/json\r\n"
            b"Content-Length: 1000\r\n\r\n{"
        )
        time.sleep(0.2)  # let the handler thread pick the request up
        return sock

    def test_wedged_handler_cannot_stretch_stop_and_is_counted(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        srv = ModelServer(
            registry, ServerConfig(port=0, drain_timeout_s=1.0)
        ).start()
        assert srv.drain_timed_out.value == 0
        sock = self._wedge_handler(srv)
        try:
            start = time.monotonic()
            srv.stop(drain=True)
            elapsed = time.monotonic() - start
            # one shared deadline: registry drain + handler wait + thread
            # join together stay near drain_timeout_s, not a multiple of it
            assert elapsed < 1.9, f"stop took {elapsed:.2f}s against a 1.0s drain budget"
            assert srv.drain_timed_out.value == 1
        finally:
            sock.close()

    def test_clean_drain_does_not_count_a_timeout(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        srv = ModelServer(registry, ServerConfig(port=0, drain_timeout_s=5.0)).start()
        client = PredictClient(srv.url)
        client.predict(sample_images(1, seed=34)[0])
        client.close()
        start = time.monotonic()
        srv.stop(drain=True)
        assert time.monotonic() - start < 2.0  # idle server: no budget burned
        assert srv.drain_timed_out.value == 0

    def test_drain_timed_out_is_surfaced_in_metrics(self):
        registry = ModelRegistry()
        registry.register("net4", build_small_network(4))
        with ModelServer(registry, ServerConfig(port=0)) as srv:
            client = PredictClient(srv.url)
            assert client.metrics()["server"]["drain_timed_out"] == 0
            client.close()
