"""Hot weight refresh across a *structural* change (the ISSUE's regression).

A served model whose thresholds change under it must not be re-quantized
into the old pruned channel layout: the registry's quiesced refresh has to
rebuild the plan's pruning / shift-plane state and keep serving exact
logits.  The plan summary exposed through ``metrics_snapshot`` must reflect
the new sparsity state.
"""

from __future__ import annotations

import numpy as np

from repro.quant.sparsify import sparsify_model
from repro.serve import ModelRegistry

from tests.infer.conftest import build_small_network, eager_logits, sample_images

PARITY_ATOL = 1e-5


def _submit_all(registry, images):
    futures = [registry.submit(img) for img in images]
    return np.stack([f.result(timeout=10) for f in futures])


def test_refresh_rebuilds_plan_on_new_k_histogram():
    """Re-sparsifying to a different k histogram through registry.refresh()
    swaps in a freshly pruned plan with exact parity through the batcher."""
    model = build_small_network(4)
    sparsify_model(model, 0.3)
    registry = ModelRegistry()
    entry = registry.register("net4", model)
    images = sample_images(6, seed=71)
    registry.start()
    try:
        before = _submit_all(registry, images)
        assert np.max(np.abs(before - eager_logits(model, images))) <= PARITY_ATOL
        old_plan = entry.engine.plan
        old_pruned = entry.engine.plan_summary()["pruned_filters_total"]

        sparsify_model(model, 0.6)  # structural change: new channel layout
        entry.batcher.join_idle(10)
        assert registry.refresh("net4") > 0
        after = _submit_all(registry, images)
    finally:
        registry.stop()
    assert entry.engine.plan is not old_plan
    assert entry.engine.plan_summary()["pruned_filters_total"] > old_pruned
    assert np.max(np.abs(after - eager_logits(model, images))) <= PARITY_ATOL


def test_metrics_snapshot_carries_plan_summary():
    """/metrics exposes kernel choices, k histogram and pruning counts."""
    model = build_small_network(4)
    sparsify_model(model, 0.5)
    registry = ModelRegistry()
    registry.register("net4", model)
    plan = registry.metrics_snapshot()["net4"]["plan"]
    assert plan["pruned"] is True
    assert plan["pruned_filters_total"] > 0
    assert sum(plan["kernels"].values()) == len(plan["layers"])
    assert plan["k_hist"][0] > 0  # the k_i histogram shows the dead filters
    assert plan["config"]["kernel"] == "auto"


def test_int8_refresh_races_concurrent_predicts_without_torn_outputs():
    """Registry hot-refresh racing a stream of concurrent predicts on the
    integer-only path: every response must bitwise-match the int8 engine's
    *pre*- or *post*-refresh logits — never a torn mix of old packed planes
    and new quantization scales."""
    import threading

    from repro.infer import InferenceEngine
    from repro.infer.plan import PlanConfig

    model = build_small_network(4)
    engine = InferenceEngine(model, config=PlanConfig(dtype="int8"), on_stale="refresh")
    registry = ModelRegistry()
    entry = registry.register("net4", engine=engine)
    images = sample_images(4, seed=91)
    registry.start()
    try:
        before = np.stack(
            [registry.submit(img).result(timeout=10) for img in images]
        )
        rows: "list[tuple[int, np.ndarray]]" = []
        errors: "list[Exception]" = []
        stop = threading.Event()

        def pound() -> None:
            i = 0
            while not stop.is_set():
                try:
                    rows.append((i % 4, registry.submit(images[i % 4]).result(timeout=10)))
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=pound) for _ in range(3)]
        for t in threads:
            t.start()
        for p in model.parameters():
            p.data *= 1.02  # real weight change: new scales + packed planes
        assert registry.refresh("net4") > 0
        stop.set()
        for t in threads:
            t.join(15)
        after = np.stack(
            [registry.submit(img).result(timeout=10) for img in images]
        )
    finally:
        registry.stop()
    assert not errors, errors
    assert rows, "the refresh raced zero predicts; nothing was exercised"
    for index, row in rows:
        assert np.array_equal(row, before[index]) or np.array_equal(
            row, after[index]
        ), "int8 response matches neither generation: torn refresh state"
