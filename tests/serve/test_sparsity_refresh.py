"""Hot weight refresh across a *structural* change (the ISSUE's regression).

A served model whose thresholds change under it must not be re-quantized
into the old pruned channel layout: the registry's quiesced refresh has to
rebuild the plan's pruning / shift-plane state and keep serving exact
logits.  The plan summary exposed through ``metrics_snapshot`` must reflect
the new sparsity state.
"""

from __future__ import annotations

import numpy as np

from repro.quant.sparsify import sparsify_model
from repro.serve import ModelRegistry

from tests.infer.conftest import build_small_network, eager_logits, sample_images

PARITY_ATOL = 1e-5


def _submit_all(registry, images):
    futures = [registry.submit(img) for img in images]
    return np.stack([f.result(timeout=10) for f in futures])


def test_refresh_rebuilds_plan_on_new_k_histogram():
    """Re-sparsifying to a different k histogram through registry.refresh()
    swaps in a freshly pruned plan with exact parity through the batcher."""
    model = build_small_network(4)
    sparsify_model(model, 0.3)
    registry = ModelRegistry()
    entry = registry.register("net4", model)
    images = sample_images(6, seed=71)
    registry.start()
    try:
        before = _submit_all(registry, images)
        assert np.max(np.abs(before - eager_logits(model, images))) <= PARITY_ATOL
        old_plan = entry.engine.plan
        old_pruned = entry.engine.plan_summary()["pruned_filters_total"]

        sparsify_model(model, 0.6)  # structural change: new channel layout
        entry.batcher.join_idle(10)
        assert registry.refresh("net4") > 0
        after = _submit_all(registry, images)
    finally:
        registry.stop()
    assert entry.engine.plan is not old_plan
    assert entry.engine.plan_summary()["pruned_filters_total"] > old_pruned
    assert np.max(np.abs(after - eager_logits(model, images))) <= PARITY_ATOL


def test_metrics_snapshot_carries_plan_summary():
    """/metrics exposes kernel choices, k histogram and pruning counts."""
    model = build_small_network(4)
    sparsify_model(model, 0.5)
    registry = ModelRegistry()
    registry.register("net4", model)
    plan = registry.metrics_snapshot()["net4"]["plan"]
    assert plan["pruned"] is True
    assert plan["pruned_filters_total"] > 0
    assert sum(plan["kernels"].values()) == len(plan["layers"])
    assert plan["k_hist"][0] > 0  # the k_i histogram shows the dead filters
    assert plan["config"]["kernel"] == "auto"
