"""Serving metrics core + thread-safety of the shared train.metrics accumulators."""

from __future__ import annotations

import threading

import pytest

from repro.serve.metrics import LatencyReservoir, ServerMetrics, percentile
from repro.train.metrics import Counter, RunningAverage


def _hammer(fn, threads: int = 8, iterations: int = 500) -> None:
    barrier = threading.Barrier(threads)

    def run():
        barrier.wait()
        for _ in range(iterations):
            fn()

    workers = [threading.Thread(target=run) for _ in range(threads)]
    for w in workers:
        w.start()
    for w in workers:
        w.join()


class TestThreadSafeAccumulators:
    def test_running_average_under_contention(self):
        """Concurrent update() calls must never lose increments."""
        avg = RunningAverage()
        _hammer(lambda: avg.update(2.0, weight=3))
        assert avg.count == 8 * 500 * 3
        assert avg.value == pytest.approx(2.0)

    def test_counter_under_contention(self):
        counter = Counter()
        _hammer(counter.increment)
        assert counter.value == 8 * 500

    def test_counter_increment_amount(self):
        counter = Counter()
        assert counter.increment(5) == 5
        assert counter.increment() == 6

    def test_running_average_empty(self):
        assert RunningAverage().value == 0.0


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0
        assert percentile(samples, 0) == 1.0

    def test_single_sample(self):
        assert percentile([7.0], 99) == 7.0


class TestLatencyReservoir:
    def test_exact_below_capacity(self):
        res = LatencyReservoir(capacity=100)
        for v in range(10):
            res.record(float(v))
        assert res.seen == 10
        assert res.percentiles()["p50"] == 4.0

    def test_bounded_above_capacity(self):
        res = LatencyReservoir(capacity=64)
        for v in range(10_000):
            res.record(float(v))
        assert res.seen == 10_000
        assert len(res._samples) == 64
        # A uniform sample of 0..9999 should have a p50 nowhere near the tails.
        assert 1000.0 < res.percentiles()["p50"] < 9000.0

    def test_concurrent_record(self):
        res = LatencyReservoir(capacity=32)
        _hammer(lambda: res.record(1.0))
        assert res.seen == 8 * 500
        assert res.percentiles()["p99"] == 1.0


class TestServerMetrics:
    def test_snapshot_shape_and_counts(self):
        m = ServerMetrics()
        m.record_offered(), m.record_offered(), m.record_offered()
        m.record_accepted(), m.record_accepted()
        m.record_shed()
        m.record_batch(2)
        m.record_completed(0.010)
        m.record_completed(0.020)
        snap = m.snapshot()
        assert snap["requests"] == {
            "offered": 3, "accepted": 2, "shed": 1, "completed": 2,
            "expired": 0, "failed": 0, "cancelled": 0,
        }
        assert snap["batches"]["count"] == 1
        assert snap["batches"]["mean_size"] == 2.0
        assert snap["batches"]["histogram"] == {"2": 1}
        assert snap["latency_s"]["mean"] == pytest.approx(0.015)
        assert snap["latency_s"]["samples"] == 2
        assert set(snap["latency_s"]) >= {"p50", "p95", "p99", "mean"}

    def test_depth_gauge_binding(self):
        m = ServerMetrics()
        assert m.queue_depth == 0
        m.bind_depth_gauge(lambda: 17)
        assert m.snapshot()["queue_depth"] == 17

    def test_snapshot_is_json_ready(self):
        import json

        m = ServerMetrics()
        m.record_batch(4)
        m.record_completed(0.001)
        assert json.loads(json.dumps(m.snapshot()))
