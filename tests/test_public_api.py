"""Public-API surface checks: every exported name resolves and is documented."""

from __future__ import annotations

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.nn.layers",
    "repro.nn.optim",
    "repro.quant",
    "repro.models",
    "repro.data",
    "repro.train",
    "repro.infer",
    "repro.infer.intq",
    "repro.testing",
    "repro.serve",
    "repro.serve.cluster",
    "repro.hw",
    "repro.hw.fpga",
    "repro.hw.asic",
    "repro.analysis",
    "repro.experiments",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for exported in module.__all__:
        assert hasattr(module, exported), f"{name}.{exported} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_module_docstrings(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    """Every public class/function reachable from __all__ carries a docstring."""
    module = importlib.import_module(name)
    undocumented = []
    for exported in module.__all__:
        obj = getattr(module, exported)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(exported)
    assert not undocumented, f"{name}: undocumented public items {undocumented}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
