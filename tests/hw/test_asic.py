"""Tests for the 65 nm ASIC energy model (Fig. 5 ordering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw.asic import AsicEnergyModel, EnergyTable65nm
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


def layer_ops(scheme_key, nid=1):
    net = build_network(nid, SCHEMES[scheme_key], num_classes=10,
                        image_size=16, width_scale=0.5, rng=0)
    return network_largest_layer_ops(net)


@pytest.fixture(scope="module")
def energies():
    model = AsicEnergyModel()
    return {key: model.layer_energy_uj(layer_ops(key)) for key in ("Full", "L-2", "L-1", "FP")}


class TestEnergyTable:
    def test_defaults_encode_op_cost_ordering(self):
        t = EnergyTable65nm()
        assert t.shift < t.int_add < t.int_mult_4x8 < t.int_mult_8x8 < t.fp32_mult
        assert t.fp32_add < t.fp32_mult

    def test_positive_validated(self):
        with pytest.raises(HardwareModelError):
            EnergyTable65nm(shift=0.0)


class TestFig5Ordering:
    def test_l1_cheapest(self, energies):
        assert energies["L-1"] < energies["L-2"]
        assert energies["L-1"] < energies["FP"]

    def test_l2_cheaper_than_fixed_point(self, energies):
        """Fig. 5: LightNN-2 sits left of (or equal to) FP in energy."""
        assert energies["L-2"] < energies["FP"] * 1.5

    def test_full_precision_most_expensive_by_far(self, energies):
        for key in ("L-2", "L-1", "FP"):
            assert energies["Full"] > 10 * energies[key]

    def test_l2_roughly_twice_l1(self, energies):
        assert energies["L-2"] == pytest.approx(2 * energies["L-1"], rel=0.05)

    def test_flightnn_interpolates(self):
        model = AsicEnergyModel()
        net = build_network(1, SCHEMES["FL_a"], num_classes=10, image_size=16,
                            width_scale=0.5, rng=0)
        layer = net.largest_conv_layer()
        norms = layer.strategy.quantizer.residual_norms(layer.weight.data, np.zeros(2))
        layer.thresholds.data[1] = float(np.median(norms[1]))
        ops = network_largest_layer_ops(net)
        e_fl = model.layer_energy_uj(ops)
        e1 = model.layer_energy_uj(layer_ops("L-1"))
        e2 = model.layer_energy_uj(layer_ops("L-2"))
        assert e1 < e_fl < e2


class TestModelMechanics:
    def test_energy_scales_with_macs(self):
        model = AsicEnergyModel()
        small = model.layer_energy_uj(layer_ops("L-1", nid=4))
        large = model.layer_energy_uj(layer_ops("L-1", nid=1))
        assert large != small  # different largest layers

    def test_energy_per_mac(self):
        model = AsicEnergyModel()
        ops = layer_ops("Full")
        per_mac = model.energy_per_mac_pj(ops)
        t = model.table
        assert per_mac == pytest.approx(t.fp32_mult + t.fp32_add)

    def test_unknown_scheme_kind(self):
        from dataclasses import replace

        ops = replace(layer_ops("L-1"), scheme_kind="mystery")
        with pytest.raises(HardwareModelError):
            AsicEnergyModel().layer_energy_uj(ops)

    def test_custom_table(self):
        cheap_shift = EnergyTable65nm(shift=0.001)
        default = EnergyTable65nm()
        ops = layer_ops("L-1")
        assert AsicEnergyModel(cheap_shift).layer_energy_uj(ops) < AsicEnergyModel(default).layer_energy_uj(ops)
