"""Tests for the whole-network cost estimator and the ASIC area model."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import HardwareModelError
from repro.hw import (
    AreaTable65nm,
    AsicAreaModel,
    estimate_network_cost,
    network_largest_layer_ops,
)
from repro.models import build_network
from repro.quant import paper_schemes, scheme_binaryconnect

SCHEMES = paper_schemes()


def net(scheme_key, nid=1):
    scheme = SCHEMES[scheme_key] if scheme_key in SCHEMES else scheme_key
    return build_network(nid, scheme, num_classes=10, image_size=16,
                         width_scale=0.25, rng=0)


class TestNetworkCost:
    def test_total_macs_sum_of_layers(self):
        est = estimate_network_cost(net("Full"))
        assert est.total_macs == sum(p.macs for p in est.layer_ops)
        assert len(est.layer_ops) == 7  # VGG-7

    def test_probe_automatic(self):
        model = net("L-1")
        # No manual probe: estimator must handle it.
        est = estimate_network_cost(model)
        assert est.throughput > 0

    def test_energy_ordering_across_schemes(self):
        energies = {key: estimate_network_cost(net(key)).total_energy_uj
                    for key in ("Full", "L-2", "L-1", "FP")}
        assert energies["L-1"] < energies["L-2"] < energies["FP"] < energies["Full"]

    def test_latency_positive_and_consistent(self):
        est = estimate_network_cost(net("L-1"))
        assert est.latency_s > 0
        assert est.throughput > 0
        assert 0 < est.largest_layer_fraction <= 1.0

    def test_l1_network_faster_than_l2(self):
        assert (estimate_network_cost(net("L-1")).throughput
                > estimate_network_cost(net("L-2")).throughput)

    def test_resnet_supported(self):
        est = estimate_network_cost(net("L-1", nid=2))
        assert len(est.layer_ops) > 10  # ResNet-18 conv layers incl. shortcuts


class TestAreaModel:
    def test_unit_area_ordering(self):
        areas = {}
        for key in ("Full", "FP", "L-1"):
            ops = network_largest_layer_ops(net(key))
            areas[key] = AsicAreaModel().unit_area_um2(ops)
        bc_ops = network_largest_layer_ops(net(scheme_binaryconnect()))
        areas["BC"] = AsicAreaModel().unit_area_um2(bc_ops)
        # The paper's claim: shifts are more area-efficient than multipliers.
        assert areas["BC"] < areas["L-1"] < areas["FP"] < areas["Full"]

    def test_lightnn_unit_is_shift_plus_add(self):
        ops = network_largest_layer_ops(net("L-1"))
        table = AreaTable65nm()
        assert AsicAreaModel(table).unit_area_um2(ops) == table.shift + table.int_add

    def test_datapath_scales_with_units(self):
        ops = network_largest_layer_ops(net("L-1"))
        model = AsicAreaModel()
        assert model.datapath_area_mm2(ops, 200) == pytest.approx(
            200 * model.unit_area_um2(ops) / 1e6
        )

    def test_invalid_units(self):
        ops = network_largest_layer_ops(net("L-1"))
        with pytest.raises(HardwareModelError):
            AsicAreaModel().datapath_area_mm2(ops, 0)

    def test_unknown_kind(self):
        ops = replace(network_largest_layer_ops(net("L-1")), scheme_kind="mystery")
        with pytest.raises(HardwareModelError):
            AsicAreaModel().unit_area_um2(ops)

    def test_table_validated(self):
        with pytest.raises(HardwareModelError):
            AreaTable65nm(shift=-1.0)
