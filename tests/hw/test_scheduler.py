"""Tests for the HLS-style loop-nest cycle model."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hw.fpga import HlsDirectives, schedule_conv_layer
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


def layer_ops(scheme_key="L-1", nid=1):
    net = build_network(nid, SCHEMES[scheme_key], num_classes=10, image_size=16,
                        width_scale=0.25, rng=0)
    return network_largest_layer_ops(net)


class TestDirectives:
    def test_validation(self):
        with pytest.raises(HardwareModelError):
            HlsDirectives(unroll=0)
        with pytest.raises(HardwareModelError):
            HlsDirectives(initiation_interval=0.5)
        with pytest.raises(HardwareModelError):
            HlsDirectives(pipeline_depth=0)


class TestSchedule:
    def test_unroll_reduces_cycles(self):
        ops = layer_ops()
        serial = schedule_conv_layer(ops, HlsDirectives(unroll=1))
        parallel = schedule_conv_layer(ops, HlsDirectives(unroll=8))
        assert parallel.total_cycles < serial.total_cycles

    def test_fully_unrolled_floor_is_pipeline_depth(self):
        ops = layer_ops()
        directives = HlsDirectives(unroll=10**6, pipeline_depth=4)
        schedule = schedule_conv_layer(ops, directives)
        assert schedule.reduction_trips == 1
        assert schedule.cycles_per_output == 1 + 4

    def test_ii_scales_cycles(self):
        ops = layer_ops()
        ii1 = schedule_conv_layer(ops, HlsDirectives(unroll=1, initiation_interval=1))
        ii2 = schedule_conv_layer(ops, HlsDirectives(unroll=1, initiation_interval=2))
        assert ii2.total_cycles > 1.8 * ii1.total_cycles

    def test_lightnn2_doubles_reduction_work(self):
        d = HlsDirectives(unroll=1)
        s1 = schedule_conv_layer(layer_ops("L-1"), d)
        s2 = schedule_conv_layer(layer_ops("L-2"), d)
        assert s2.reduction_trips == 2 * s1.reduction_trips

    def test_agrees_with_coarse_model_up_to_pipeline_fill(self):
        """total_cycles ~ macs * k / unroll, plus fill overhead."""
        ops = layer_ops("L-2")
        directives = HlsDirectives(unroll=4, initiation_interval=1, pipeline_depth=4)
        schedule = schedule_conv_layer(ops, directives)
        coarse = ops.macs * ops.cycles_per_image_factor / directives.unroll
        fill = directives.pipeline_depth * schedule.output_elements
        assert coarse <= schedule.total_cycles <= coarse * 1.25 + fill

    def test_latency_seconds(self):
        schedule = schedule_conv_layer(layer_ops(), HlsDirectives())
        assert schedule.latency_s(100e6) == pytest.approx(schedule.total_cycles / 100e6)
        with pytest.raises(HardwareModelError):
            schedule.latency_s(0.0)
