"""Tests for the off-chip weight-streaming path of the FPGA model."""

from __future__ import annotations

import pytest

from repro.hw.fpga import FPGAModel
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def full_precision_net7_ops():
    """Network 7's FP32 largest layer: 18.9 Mb of weights, too big for BRAM."""
    net = build_network(7, SCHEMES["Full"], num_classes=10, image_size=32, rng=0)
    return network_largest_layer_ops(net)


class TestWeightStreaming:
    def test_oversized_weights_streamed(self, full_precision_net7_ops):
        point = FPGAModel().map_layer(full_precision_net7_ops)
        assert not point.weights_on_chip

    def test_streamed_design_reports_no_weight_bram(self, full_precision_net7_ops):
        point = FPGAModel().map_layer(full_precision_net7_ops)
        # BRAM usage = overhead + activation lanes only; must be far less
        # than overhead + full weight storage (1024 blocks) + lanes.
        assert point.usage.bram < 1090
        assert point.batch_size >= 1

    def test_bandwidth_bound_kicks_in_when_starved(self, full_precision_net7_ops):
        wide = FPGAModel(ddr_bandwidth=6.4e9).map_layer(full_precision_net7_ops)
        starved = FPGAModel(ddr_bandwidth=6.4e5).map_layer(full_precision_net7_ops)
        assert starved.throughput < wide.throughput
        # At 640 KB/s, streaming 2.36 MB of weights per batch dominates.
        weight_bytes = full_precision_net7_ops.weight_bits / 8
        expected = 6.4e5 * starved.batch_size / weight_bytes
        assert starved.throughput == pytest.approx(expected)

    def test_small_layer_stays_on_chip(self):
        net = build_network(1, SCHEMES["Full"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        point = FPGAModel().map_layer(network_largest_layer_ops(net))
        assert point.weights_on_chip
