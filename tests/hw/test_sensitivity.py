"""Tests for hardware-model sensitivity analysis."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hw import energy_ordering_sensitivity, throughput_ordering_sensitivity
from repro.hw.fpga.resources import UNIT_COSTS
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def ops_by_scheme():
    out = {}
    for key in ("Full", "L-2", "L-1", "FP"):
        net = build_network(7, SCHEMES[key], num_classes=10, image_size=32, rng=0)
        out[key] = network_largest_layer_ops(net)
    return out


class TestEnergySensitivity:
    def test_ordering_robust_over_2x_perturbations(self, ops_by_scheme):
        outcome = energy_ordering_sensitivity(ops_by_scheme)
        assert outcome.trials == 9
        assert outcome.robust, outcome.violations

    def test_extreme_shift_cost_breaks_ordering(self, ops_by_scheme):
        """Sanity: the check can fail — a 50x shift cost flips L-1 vs FP."""
        outcome = energy_ordering_sensitivity(
            {k: ops_by_scheme[k] for k in ("L-1", "L-2", "FP")},
            shift_scales=(50.0,),
            mult_scales=(1.0,),
        )
        assert not outcome.robust

    def test_needs_two_schemes(self, ops_by_scheme):
        with pytest.raises(HardwareModelError):
            energy_ordering_sensitivity({"L-1": ops_by_scheme["L-1"]})


class TestThroughputSensitivity:
    def test_ordering_robust(self, ops_by_scheme):
        outcome = throughput_ordering_sensitivity(ops_by_scheme)
        assert outcome.trials == 9
        assert outcome.robust, outcome.violations

    def test_unit_costs_restored_after_run(self, ops_by_scheme):
        before = dict(UNIT_COSTS)
        throughput_ordering_sensitivity(ops_by_scheme)
        assert UNIT_COSTS == before

    def test_needs_l1_and_l2(self, ops_by_scheme):
        with pytest.raises(HardwareModelError):
            throughput_ordering_sensitivity({"L-1": ops_by_scheme["L-1"]})
