"""Tests for the FPGA design-point model, including Table-6 pattern checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hw.fpga import (
    FPGA_ZC706,
    OVERHEAD,
    UNIT_COSTS,
    FPGAModel,
    FPGAResources,
    bram_blocks,
)
from repro.hw.ops import network_largest_layer_ops
from repro.models import build_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


def layer_ops(scheme_key, nid=7, image_size=32, width_scale=1.0):
    net = build_network(nid, SCHEMES[scheme_key], num_classes=10,
                        image_size=image_size, width_scale=width_scale, rng=0)
    return network_largest_layer_ops(net)


@pytest.fixture(scope="module")
def net7_points():
    model = FPGAModel()
    return {key: model.map_layer(layer_ops(key)) for key in ("Full", "L-2", "L-1", "FP")}


class TestResources:
    def test_zc706_matches_table6_available_row(self):
        assert FPGA_ZC706.lut == 218_600
        assert FPGA_ZC706.ff == 437_200
        assert FPGA_ZC706.dsp == 900
        assert FPGA_ZC706.bram == 1_090

    def test_fits_in(self):
        small = FPGAResources(lut=10, ff=10, dsp=1, bram=1)
        assert small.fits_in(FPGA_ZC706)
        assert not FPGAResources(lut=10**9, ff=0, dsp=0, bram=0).fits_in(FPGA_ZC706)

    def test_negative_rejected(self):
        with pytest.raises(HardwareModelError):
            FPGAResources(lut=-1, ff=0, dsp=0, bram=0)

    def test_bram_blocks(self):
        assert bram_blocks(0) == 0
        assert bram_blocks(1) == 1
        assert bram_blocks(18 * 1024) == 1
        assert bram_blocks(18 * 1024 + 1) == 2
        with pytest.raises(HardwareModelError):
            bram_blocks(-5)

    def test_unit_costs_encode_the_papers_mechanism(self):
        assert UNIT_COSTS["full"].dsp > UNIT_COSTS["fixed"].dsp > UNIT_COSTS["lightnn"].dsp
        assert UNIT_COSTS["lightnn"].dsp == 0  # shifts need no DSP
        assert UNIT_COSTS["lightnn"].lut > 0   # shifts live in LUTs


class TestModelValidation:
    def test_bad_construction(self):
        with pytest.raises(HardwareModelError):
            FPGAModel(units_per_lane=0)
        with pytest.raises(HardwareModelError):
            FPGAModel(frequency_hz=0)

    def test_unknown_scheme_kind(self):
        from dataclasses import replace

        ops = replace(layer_ops("L-1"), scheme_kind="mystery")
        with pytest.raises(HardwareModelError):
            FPGAModel().map_layer(ops)


class TestTable6Patterns:
    """The qualitative resource-utilisation claims of the paper's Table 6."""

    def test_dsp_high_for_full_and_fixed_low_for_lightnn(self, net7_points):
        assert net7_points["Full"].usage.dsp > 100
        assert net7_points["FP"].usage.dsp > 100
        assert net7_points["L-2"].usage.dsp == OVERHEAD.dsp  # "only need DSP for addition"
        assert net7_points["L-1"].usage.dsp == OVERHEAD.dsp

    def test_lightnn_lut_heavy_but_not_binding(self, net7_points):
        for key in ("L-2", "L-1"):
            frac = net7_points[key].usage.utilization(FPGA_ZC706)["lut"]
            assert frac > 0.2        # uses real LUT area for shift units
            assert frac < 0.9        # but LUT is not the binding resource

    def test_bram_binds_lightnns(self, net7_points):
        assert "bram" in net7_points["L-2"].bound_by
        assert "bram" in net7_points["L-1"].bound_by

    def test_every_design_fits_budget(self, net7_points):
        for point in net7_points.values():
            assert point.usage.fits_in(FPGA_ZC706)


class TestThroughputOrdering:
    """The qualitative throughput claims of Tables 2-5."""

    def test_l1_roughly_2x_l2(self, net7_points):
        # Paper ratios range 1.65x (net 2) to 3.9x (net 3); the pure
        # compute ratio is 2x, modulated by BRAM lane counts.
        ratio = net7_points["L-1"].throughput / net7_points["L-2"].throughput
        assert 1.5 <= ratio <= 3.0

    def test_lightnns_beat_fixed_point(self, net7_points):
        assert net7_points["L-1"].throughput > net7_points["FP"].throughput
        # "up to 2x speedup" over fixed point:
        assert net7_points["L-1"].throughput / net7_points["FP"].throughput <= 2.5

    def test_everything_beats_full_precision(self, net7_points):
        full = net7_points["Full"].throughput
        for key in ("L-2", "L-1", "FP"):
            assert net7_points[key].throughput > 4 * full

    def test_flightnn_between_l1_and_l2_when_k_is_mixed(self):
        """Force a mixed-k FLightNN via thresholds and check interpolation."""
        model = FPGAModel()
        net = build_network(7, SCHEMES["FL_a"], num_classes=10, image_size=32, rng=0)
        layer = net.largest_conv_layer()
        norms = layer.strategy.quantizer.residual_norms(layer.weight.data, np.zeros(2))
        # Threshold at the median level-1 residual: ~half the filters drop to k=1.
        layer.thresholds.data[1] = float(np.median(norms[1]))
        ops = network_largest_layer_ops(net)
        assert 1.0 < ops.mean_k < 2.0
        fl = model.map_layer(ops)
        l1 = model.map_layer(layer_ops("L-1"))
        l2 = model.map_layer(layer_ops("L-2"))
        assert l2.throughput < fl.throughput < l1.throughput

    def test_full_precision_weights_streamed(self, net7_points):
        assert not net7_points["Full"].weights_on_chip
        assert net7_points["L-1"].weights_on_chip


class TestScalingBehaviour:
    def test_higher_frequency_higher_throughput(self):
        ops = layer_ops("L-1")
        slow = FPGAModel(frequency_hz=100e6).map_layer(ops)
        fast = FPGAModel(frequency_hz=200e6).map_layer(ops)
        assert fast.throughput == pytest.approx(2 * slow.throughput)

    def test_double_buffering_costs_bram(self):
        ops = layer_ops("L-1")
        single = FPGAModel(double_buffer=False).map_layer(ops)
        double = FPGAModel(double_buffer=True).map_layer(ops)
        assert double.batch_size <= single.batch_size

    def test_tiny_budget_rejected(self):
        ops = layer_ops("L-1")
        tiny = FPGAResources(lut=16_000, ff=9_000, dsp=5, bram=33)
        with pytest.raises(HardwareModelError):
            FPGAModel(budget=tiny).map_layer(ops)

    def test_total_units_consistent(self, net7_points):
        for p in net7_points.values():
            assert p.total_units == p.batch_size * p.units_per_lane


@settings(max_examples=20, deadline=None)
@given(width_scale=st.sampled_from([0.25, 0.5, 1.0]), key=st.sampled_from(["L-1", "L-2", "FP"]))
def test_property_designs_always_fit_budget(width_scale, key):
    ops = layer_ops(key, nid=1, image_size=16, width_scale=width_scale)
    point = FPGAModel().map_layer(ops)
    assert point.usage.fits_in(FPGA_ZC706)
    assert point.throughput > 0
