"""Tests for per-layer operation accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import HardwareModelError
from repro.hw.ops import conv_layer_ops, network_largest_layer_ops
from repro.models import build_network
from repro.nn.tensor import Tensor
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


def probed_net(scheme_key, nid=1, width_scale=0.25, image_size=16):
    net = build_network(nid, SCHEMES[scheme_key], num_classes=10,
                        image_size=image_size, width_scale=width_scale, rng=0)
    net.probe()
    return net


class TestConvLayerOps:
    def test_requires_probe(self):
        net = build_network(1, SCHEMES["Full"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        with pytest.raises(HardwareModelError):
            conv_layer_ops(net.conv_layers()[0], net.scheme)

    def test_mac_count_formula(self):
        net = probed_net("Full")
        layer = net.conv_layers()[0]
        ops = conv_layer_ops(layer, net.scheme)
        ih, iw = layer.last_input_hw
        oh, ow = layer.output_spatial(ih, iw)
        expected = oh * ow * layer.out_channels * layer.in_channels * layer.kernel_size**2
        assert ops.macs == expected

    def test_full_precision_ops(self):
        net = probed_net("Full")
        ops = conv_layer_ops(net.conv_layers()[0], net.scheme)
        assert ops.mult_ops == ops.macs
        assert ops.shift_ops == 0
        assert ops.act_bits == 32
        assert ops.cycles_per_image_factor == 1.0

    def test_lightnn2_ops(self):
        net = probed_net("L-2")
        ops = conv_layer_ops(net.conv_layers()[0], net.scheme)
        assert ops.shift_ops == 2 * ops.macs
        assert ops.add_ops == 2 * ops.macs
        assert ops.mult_ops == 0
        assert ops.mean_k == 2.0
        assert ops.act_bits == 8
        assert ops.cycles_per_image_factor == 2.0

    def test_lightnn1_half_the_shifts_of_l2(self):
        ops1 = network_largest_layer_ops(probed_net("L-1"))
        ops2 = network_largest_layer_ops(probed_net("L-2"))
        assert ops2.shift_ops == 2 * ops1.shift_ops

    def test_weight_bits_by_scheme(self):
        bits = {}
        for key in ("Full", "L-2", "L-1", "FP"):
            ops = network_largest_layer_ops(probed_net(key))
            bits[key] = ops.weight_bits / ops.weight_count
        assert bits["Full"] == 32
        assert bits["L-2"] == 8
        assert bits["L-1"] == 4
        assert bits["FP"] == 4

    def test_flightnn_ops_track_filter_k(self):
        net = probed_net("FL_a")
        layer = net.largest_conv_layer()
        ops = conv_layer_ops(layer, net.scheme)
        k = layer.filter_k().astype(float)
        assert ops.mean_k == pytest.approx(k.mean())
        assert ops.shift_ops <= 2 * ops.macs + 1e-9

    def test_largest_layer_is_widest(self):
        net = probed_net("Full", nid=7)
        ops = network_largest_layer_ops(net)
        assert ops.out_channels == max(c.out_channels for c in net.conv_layers())
