"""Smoke tests for the runnable examples.

Heavy training examples are exercised by the benchmark suite; here we run
the fast, deterministic one end-to-end and check the others at least
import cleanly (their ``main`` is guarded).
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_exist(self):
        names = {p.stem for p in EXAMPLES.glob("*.py")}
        assert {"quickstart", "pareto_sweep", "fpga_deployment",
                "filter_decomposition", "export_for_hardware"} <= names

    @pytest.mark.parametrize(
        "name", ["quickstart", "pareto_sweep", "fpga_deployment",
                 "filter_decomposition", "export_for_hardware"]
    )
    def test_example_imports(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_filter_decomposition_runs(self, capsys):
        module = load_example("filter_decomposition")
        module.main()
        out = capsys.readouterr().out
        assert "convolution equivalence" in out

    def test_fpga_deployment_runs(self, capsys):
        module = load_example("fpga_deployment")
        module.main()
        out = capsys.readouterr().out
        assert "ZC706" in out
        assert "L-1_4W8A" in out
