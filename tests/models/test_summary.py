"""Tests for model summaries."""

from __future__ import annotations

import pytest

from repro.models import build_network, render_summary, summarize_network
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


class TestSummary:
    def test_row_count_covers_all_layers(self):
        net = build_network(1, SCHEMES["L-1"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        rows = summarize_network(net)
        assert len(rows) == len(net.conv_layers()) + len(net.linear_layers())

    def test_params_match_network_total(self):
        net = build_network(1, SCHEMES["Full"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        rows = summarize_network(net)
        quantized_params = sum(r.params for r in rows)
        # Summary covers conv/linear weights (+bias); BN affines are extra.
        assert quantized_params < net.num_parameters()
        assert quantized_params > 0.8 * net.num_parameters()

    def test_storage_matches_network_storage(self):
        net = build_network(1, SCHEMES["L-2"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        rows = summarize_network(net)
        total_mb = sum(r.storage_bits for r in rows) / 8 / 1e6
        assert total_mb == pytest.approx(net.storage_mb())

    def test_mean_k_column(self):
        net = build_network(1, SCHEMES["L-2"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        for row in summarize_network(net):
            assert row.mean_k == pytest.approx(2.0)

    def test_render_contains_total(self):
        net = build_network(4, SCHEMES["L-1"], num_classes=10, image_size=16,
                            width_scale=0.5, rng=0)
        text = render_summary(net)
        assert "total" in text
        assert "conv" in text and "linear" in text

    def test_macs_positive_and_spatial_recorded(self):
        net = build_network(2, SCHEMES["Full"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        rows = summarize_network(net)
        conv_rows = [r for r in rows if r.kind == "conv"]
        assert all(r.macs > 0 for r in conv_rows)
        assert all(r.output_hw is not None for r in conv_rows)
