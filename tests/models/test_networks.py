"""Tests for the Table-1 model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import (
    NETWORK_CONFIGS,
    build_network,
    resnet_stage_plan,
    scaled_config,
    vgg_channel_plan,
)
from repro.nn.tensor import Tensor
from repro.quant.qlayers import QConv2d
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


class TestConfigs:
    def test_table1_complete(self):
        assert sorted(NETWORK_CONFIGS) == list(range(1, 9))

    def test_table1_values(self):
        assert NETWORK_CONFIGS[3].width == 512
        assert NETWORK_CONFIGS[8].structure == "resnet"
        assert NETWORK_CONFIGS[8].depth == 10
        assert NETWORK_CONFIGS[4].dataset == "svhn"

    def test_scaled_config_rounds_to_multiple_of_4(self):
        cfg = scaled_config(NETWORK_CONFIGS[1], 0.3)  # 64 * 0.3 = 19.2 -> 20
        assert cfg.width % 4 == 0
        assert cfg.width == 20

    def test_scaled_config_validates(self):
        with pytest.raises(ConfigurationError):
            scaled_config(NETWORK_CONFIGS[1], -1.0)


class TestPlans:
    def test_vgg7_plan_depth(self):
        plan = vgg_channel_plan(7, 64)
        assert len(plan) == 7
        assert plan[-1][0] == 64  # widest layer hits the configured width

    def test_vgg4_plan_doubles(self):
        plan = vgg_channel_plan(4, 64)
        assert [c for c, _ in plan] == [8, 16, 32, 64]

    def test_vgg_plan_monotone_channels(self):
        for depth, width in ((4, 128), (7, 512), (6, 64)):
            channels = [c for c, _ in vgg_channel_plan(depth, width)]
            assert channels == sorted(channels)

    def test_resnet18_plan(self):
        plan = resnet_stage_plan(18, 128)
        assert sum(b for b, _, _ in plan) == 8  # 8 basic blocks
        assert plan[-1][1] == 128

    def test_resnet10_plan(self):
        plan = resnet_stage_plan(10, 256)
        assert sum(b for b, _, _ in plan) == 4
        assert plan[-1][1] == 256

    def test_resnet_too_shallow(self):
        with pytest.raises(ConfigurationError):
            resnet_stage_plan(2, 64)


class TestParameterCounts:
    @pytest.mark.parametrize("nid", range(1, 9))
    def test_within_factor_two_of_table1(self, nid):
        cfg = NETWORK_CONFIGS[nid]
        net = build_network(nid, SCHEMES["Full"], num_classes=10, image_size=32, rng=0)
        ratio = net.num_parameters() / cfg.nominal_params
        assert 0.4 < ratio < 2.0, f"network {nid}: {ratio:.2f}x of Table 1"


class TestForward:
    @pytest.mark.parametrize("nid", [1, 2, 4, 8])
    @pytest.mark.parametrize("scheme_key", ["Full", "L-2", "L-1", "FP", "FL_a"])
    def test_all_schemes_forward(self, nid, scheme_key, rng):
        net = build_network(
            nid, SCHEMES[scheme_key], num_classes=7, image_size=16, width_scale=0.25, rng=0
        )
        out = net(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 7)
        assert np.isfinite(out.numpy()).all()

    def test_small_images_supported(self, rng):
        net = build_network(3, SCHEMES["Full"], num_classes=5, image_size=8,
                            width_scale=0.125, rng=0)
        assert net(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 5)

    def test_unknown_network_id(self):
        with pytest.raises(ConfigurationError):
            build_network(99, SCHEMES["Full"], num_classes=10, image_size=16)

    def test_gradients_reach_all_parameters(self, rng):
        from repro.nn import functional as F

        net = build_network(2, SCHEMES["FL_a"], num_classes=4, image_size=8,
                            width_scale=0.125, rng=0)
        logits = net(Tensor(rng.normal(size=(4, 3, 8, 8))))
        F.cross_entropy(logits, np.array([0, 1, 2, 3])).backward()
        missing = [n for n, p in net.named_parameters() if p.grad is None]
        assert not missing, f"parameters without gradient: {missing}"


class TestNetworkIntrospection:
    def test_largest_layer_is_widest(self):
        net = build_network(7, SCHEMES["L-1"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        layer = net.largest_conv_layer()
        assert layer.out_channels == max(c.out_channels for c in net.conv_layers())

    def test_storage_ratios_between_schemes(self):
        """L-2 storage = 2x L-1 = 2x FP; Full = 8x L-2 (paper's Storage column)."""
        sizes = {}
        for key in ("Full", "L-2", "L-1", "FP"):
            net = build_network(1, SCHEMES[key], num_classes=10, image_size=16,
                                width_scale=0.5, rng=0)
            sizes[key] = net.storage_mb()
        assert sizes["L-2"] == pytest.approx(2 * sizes["L-1"])
        assert sizes["L-1"] == pytest.approx(sizes["FP"])
        assert sizes["Full"] == pytest.approx(4 * sizes["L-2"])  # 32 vs 8 bits

    def test_flightnn_storage_between_l1_and_l2(self):
        nets = {
            key: build_network(1, SCHEMES[key], num_classes=10, image_size=16,
                               width_scale=0.5, rng=0)
            for key in ("L-2", "L-1", "FL_a")
        }
        fl = nets["FL_a"].storage_mb()
        assert nets["L-1"].storage_mb() <= fl <= nets["L-2"].storage_mb() + 1e-9

    def test_mean_filter_k_by_scheme(self):
        for key, expected in (("L-1", 1.0), ("L-2", 2.0), ("Full", 0.0), ("FP", 0.0)):
            net = build_network(1, SCHEMES[key], num_classes=10, image_size=16,
                                width_scale=0.25, rng=0)
            assert net.mean_filter_k() == pytest.approx(expected)

    def test_storage_with_overhead_larger(self):
        net = build_network(1, SCHEMES["L-1"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        assert net.storage_mb(include_overhead=True) > net.storage_mb()

    def test_probe_records_input_sizes(self):
        net = build_network(1, SCHEMES["Full"], num_classes=10, image_size=16,
                            width_scale=0.25, rng=0)
        net.probe()
        assert all(c.last_input_hw is not None for c in net.conv_layers())

    def test_conv_layer_count_matches_depth(self):
        net = build_network(1, SCHEMES["Full"], num_classes=10, image_size=16, rng=0)
        assert len(net.conv_layers()) == NETWORK_CONFIGS[1].depth

    def test_repr(self):
        net = build_network(1, SCHEMES["Full"], num_classes=10, image_size=16, rng=0)
        assert "vgg-7" in repr(net)
