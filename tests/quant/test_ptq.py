"""Tests for post-training quantization (the no-retraining ablation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.models import build_network
from repro.nn.tensor import Tensor, no_grad
from repro.quant import paper_schemes, quantize_model
from repro.quant.power_of_two import is_power_of_two_value
from repro.train import TrainConfig, Trainer

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def trained_full():
    split = generate_synthetic_images(
        SyntheticImageConfig(num_classes=5, image_size=10, train_size=160,
                             test_size=80, noise=0.4, seed=44)
    )
    net = build_network(1, SCHEMES["Full"], num_classes=5, image_size=10,
                        width_scale=0.2, rng=2)
    trainer = Trainer(net, TrainConfig(epochs=5, batch_size=32, lr=3e-3))
    trainer.fit(split)
    return net, trainer, split


class TestQuantizeModel:
    def test_transfers_weights(self, trained_full):
        source, _, _ = trained_full
        target = quantize_model(source, SCHEMES["L-1"], num_classes=5)
        np.testing.assert_array_equal(
            target.conv_layers()[0].weight.data, source.conv_layers()[0].weight.data
        )
        assert is_power_of_two_value(target.conv_layers()[0].quantized_weight()).all()

    def test_flightnn_target_gets_fresh_thresholds(self, trained_full):
        source, _, _ = trained_full
        target = quantize_model(source, SCHEMES["FL_a"], num_classes=5)
        for layer in target.conv_layers():
            np.testing.assert_array_equal(layer.thresholds.data, 0.0)

    def test_ptq_l2_accuracy_close_to_source(self, trained_full):
        """Two power-of-two terms approximate FP32 weights closely; PTQ to
        LightNN-2 should retain most of the source accuracy."""
        source, trainer, split = trained_full
        target = quantize_model(source, SCHEMES["L-2"], num_classes=5)
        src_acc = trainer.evaluate(split.test)["accuracy"]
        tgt_acc = Trainer(target, TrainConfig(epochs=1)).evaluate(split.test)["accuracy"]
        assert tgt_acc > src_acc - 0.15

    def test_qat_beats_ptq_for_lightnn1(self, trained_full):
        """The value of Algorithm 1: QAT LightNN-1 beats PTQ LightNN-1."""
        source, trainer, split = trained_full
        ptq = quantize_model(source, SCHEMES["L-1"], num_classes=5)
        ptq_acc = Trainer(ptq, TrainConfig(epochs=1)).evaluate(split.test)["accuracy"]
        qat = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=10,
                            width_scale=0.2, rng=2)
        history = Trainer(qat, TrainConfig(epochs=5, batch_size=32, lr=3e-3)).fit(split)
        assert history.final.test_accuracy >= ptq_acc - 0.05

    def test_outputs_deterministic(self, trained_full, rng):
        source, _, _ = trained_full
        a = quantize_model(source, SCHEMES["FP"], num_classes=5)
        b = quantize_model(source, SCHEMES["FP"], num_classes=5)
        x = Tensor(rng.normal(size=(2, 3, 10, 10)))
        a.eval(), b.eval()
        with no_grad():
            np.testing.assert_array_equal(a(x).numpy(), b(x).numpy())
