"""Tests for the fixed-point baseline quantizer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.fixed_point import FixedPointFormat, best_frac_bits, quantize_fixed_point


class TestFormat:
    def test_step_and_range(self):
        fmt = FixedPointFormat(bits=4, frac_bits=3)
        assert fmt.step == 0.125
        assert fmt.min_value == -1.0
        assert fmt.max_value == 0.875

    def test_str(self):
        assert str(FixedPointFormat(bits=8, frac_bits=4)) == "Q3.4"

    def test_too_few_bits(self):
        with pytest.raises(QuantizationError):
            FixedPointFormat(bits=1, frac_bits=0)


class TestQuantize:
    def test_grid_values_unchanged(self):
        fmt = FixedPointFormat(bits=4, frac_bits=3)
        grid = np.arange(-8, 8) * fmt.step
        np.testing.assert_allclose(quantize_fixed_point(grid, fmt), grid)

    def test_saturation(self):
        fmt = FixedPointFormat(bits=4, frac_bits=3)
        out = quantize_fixed_point(np.array([5.0, -5.0]), fmt)
        np.testing.assert_allclose(out, [fmt.max_value, fmt.min_value])

    def test_rounding_nearest(self):
        fmt = FixedPointFormat(bits=8, frac_bits=3)
        np.testing.assert_allclose(quantize_fixed_point(np.array([0.3]), fmt), [0.25])

    def test_error_bounded_by_half_step(self, rng):
        fmt = FixedPointFormat(bits=8, frac_bits=4)
        x = rng.uniform(fmt.min_value, fmt.max_value, size=200)
        err = np.abs(quantize_fixed_point(x, fmt) - x)
        assert err.max() <= fmt.step / 2 + 1e-12


class TestBestFracBits:
    def test_small_weights_get_more_frac_bits(self, rng):
        small = rng.normal(scale=0.01, size=500)
        large = rng.normal(scale=2.0, size=500)
        assert best_frac_bits(small, 4) > best_frac_bits(large, 4)

    def test_returns_int(self, rng):
        assert isinstance(best_frac_bits(rng.normal(size=10), 4), int)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), bits=st.integers(2, 8), frac=st.integers(0, 6))
def test_property_output_on_grid_and_in_range(seed, bits, frac):
    fmt = FixedPointFormat(bits=bits, frac_bits=frac)
    x = np.random.default_rng(seed).normal(scale=3.0, size=64)
    q = quantize_fixed_point(x, fmt)
    codes = q / fmt.step
    np.testing.assert_allclose(codes, np.rint(codes))
    assert q.min() >= fmt.min_value - 1e-12
    assert q.max() <= fmt.max_value + 1e-12


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_idempotent(seed):
    fmt = FixedPointFormat(bits=6, frac_bits=3)
    x = np.random.default_rng(seed).normal(size=32)
    q = quantize_fixed_point(x, fmt)
    np.testing.assert_allclose(quantize_fixed_point(q, fmt), q)
