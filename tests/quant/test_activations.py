"""Tests for 8-bit activation quantization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn.tensor import Tensor
from repro.quant.activations import (
    ActivationQuantConfig,
    QuantizedActivation,
    quantize_activations,
)


class TestConfig:
    def test_step(self):
        cfg = ActivationQuantConfig(bits=8, max_abs=8.0)
        assert cfg.step == 16.0 / 256

    def test_validation(self):
        with pytest.raises(QuantizationError):
            ActivationQuantConfig(bits=1)
        with pytest.raises(QuantizationError):
            ActivationQuantConfig(max_abs=0.0)


class TestQuantizeActivations:
    def test_on_grid(self, rng):
        cfg = ActivationQuantConfig()
        x = rng.normal(size=100)
        q = quantize_activations(x, cfg)
        codes = q / cfg.step
        np.testing.assert_allclose(codes, np.rint(codes))

    def test_saturation(self):
        cfg = ActivationQuantConfig(bits=8, max_abs=8.0)
        q = quantize_activations(np.array([100.0, -100.0]), cfg)
        np.testing.assert_allclose(q, [8.0 - cfg.step, -8.0])

    def test_error_bound(self, rng):
        cfg = ActivationQuantConfig()
        x = rng.uniform(-7.5, 7.5, size=500)
        assert np.abs(quantize_activations(x, cfg) - x).max() <= cfg.step / 2 + 1e-12

    def test_idempotent(self, rng):
        cfg = ActivationQuantConfig()
        q = quantize_activations(rng.normal(size=50), cfg)
        np.testing.assert_allclose(quantize_activations(q, cfg), q)


class TestQuantizedActivationLayer:
    def test_forward_quantizes(self, rng):
        layer = QuantizedActivation()
        x = Tensor(rng.normal(size=(2, 3)))
        out = layer(x)
        codes = out.numpy() / layer.config.step
        np.testing.assert_allclose(codes, np.rint(codes))

    def test_disabled_is_identity(self, rng):
        layer = QuantizedActivation(enabled=False)
        x = Tensor(rng.normal(size=(2, 3)))
        assert layer(x) is x

    def test_ste_gradient_clipped(self):
        layer = QuantizedActivation(ActivationQuantConfig(bits=8, max_abs=1.0))
        x = Tensor(np.array([-2.0, 0.5, 2.0]), requires_grad=True)
        layer(x).backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_repr(self):
        assert "bits=8" in repr(QuantizedActivation())
