"""Tests for the hardware weight encoding (sign/exponent code planes)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.decompose import DecomposedFilterBank, decompose_filter_bank
from repro.quant.encoding import decode_terms, encode_terms
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.power_of_two import PowerOfTwoConfig


CONFIG = PowerOfTwoConfig(exp_min=-6, exp_max=1)


def make_bank(rng, thresholds=None, filters=6):
    q = FLightNNQuantizer(FLightNNConfig(k_max=2, pow2=CONFIG))
    w = rng.normal(scale=0.4, size=(filters, 2, 3, 3))
    t = np.zeros(2) if thresholds is None else thresholds
    return decompose_filter_bank(w, t, q), q.quantize(w, t).quantized


class TestRoundTrip:
    def test_decode_reconstructs_exactly(self, rng):
        bank, quantized = make_bank(rng)
        encoded = encode_terms(bank, CONFIG)
        np.testing.assert_array_equal(decode_terms(encoded), quantized)

    def test_mixed_k_round_trip(self, rng):
        q = FLightNNQuantizer(FLightNNConfig(k_max=2, pow2=CONFIG))
        w = rng.normal(scale=0.4, size=(8, 12))
        norms = q.residual_norms(w, np.zeros(2))
        t = np.array([0.0, float(np.median(norms[1]))])
        bank = decompose_filter_bank(w, t, q)
        encoded = encode_terms(bank, CONFIG)
        np.testing.assert_array_equal(decode_terms(encoded), q.quantize(w, t).quantized)

    def test_code_planes_shape(self, rng):
        bank, _ = make_bank(rng, filters=5)
        encoded = encode_terms(bank, CONFIG)
        assert encoded.signs.shape == (2, 5, 2, 3, 3)
        assert encoded.exponent_codes.shape == encoded.signs.shape
        assert encoded.signs.dtype == np.uint8


class TestBitAccounting:
    def test_bits_per_code(self, rng):
        bank, _ = make_bank(rng)
        encoded = encode_terms(bank, CONFIG)
        # 8 exponents + zero code = 9 levels -> 4-bit field + sign = 5 bits.
        assert encoded.bits_per_code == 5

    def test_total_bits_scale_with_filter_k(self, rng):
        q = FLightNNQuantizer(FLightNNConfig(k_max=2, pow2=CONFIG))
        w = rng.normal(scale=0.4, size=(6, 2, 3, 3))
        all_on = decompose_filter_bank(w, np.zeros(2), q)
        all_off = decompose_filter_bank(w, np.array([0.0, 1e9]), q)
        bits_on = encode_terms(all_on, CONFIG).total_bits
        bits_off = encode_terms(all_off, CONFIG).total_bits
        assert bits_on == pytest.approx(2 * bits_off, rel=0.01)


class TestValidation:
    def test_non_power_of_two_rejected(self):
        bad = DecomposedFilterBank(
            terms=[np.full((2, 4), 0.3)], filter_k=np.array([1, 1])
        )
        with pytest.raises(QuantizationError):
            encode_terms(bad, CONFIG)

    def test_out_of_window_exponent_rejected(self):
        bad = DecomposedFilterBank(
            terms=[np.full((1, 2), 2.0**5)], filter_k=np.array([1])
        )
        with pytest.raises(QuantizationError):
            encode_terms(bad, CONFIG)

    def test_zero_code_reserved(self, rng):
        bank, _ = make_bank(rng, thresholds=np.array([0.0, 1e9]))
        encoded = encode_terms(bank, CONFIG)
        # Every level-1 code must be the zero code (gates all off).
        assert (encoded.exponent_codes[1] == 0).all()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_encode_decode_identity(seed):
    rng = np.random.default_rng(seed)
    q = FLightNNQuantizer(FLightNNConfig(k_max=2, pow2=CONFIG))
    w = rng.normal(scale=0.5, size=(4, 6))
    t = rng.uniform(0, 0.1, size=2)
    bank = decompose_filter_bank(w, t, q)
    encoded = encode_terms(bank, CONFIG)
    np.testing.assert_array_equal(decode_terms(encoded), q.quantize(w, t).quantized)
