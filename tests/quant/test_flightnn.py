"""Tests for the FLightNN quantizer — the paper's core contribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError, ShapeError
from repro.nn.tensor import Tensor, _stable_sigmoid
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.lightnn import LightNNQuantizer, LightNNConfig
from repro.quant.power_of_two import PowerOfTwoConfig, is_power_of_two_value


def make_quantizer(k_max=2, norm_per_element=True, exp_min=-6, exp_max=1):
    return FLightNNQuantizer(
        FLightNNConfig(
            k_max=k_max,
            pow2=PowerOfTwoConfig(exp_min=exp_min, exp_max=exp_max),
            norm_per_element=norm_per_element,
        )
    )


class TestConfig:
    def test_k_max_validated(self):
        with pytest.raises(QuantizationError):
            FLightNNConfig(k_max=0)

    def test_threshold_shape_validated(self, rng):
        q = make_quantizer(k_max=2)
        with pytest.raises(ShapeError):
            q.quantize(rng.normal(size=(4, 9)), np.zeros(3))

    def test_weight_ndim_validated(self, rng):
        q = make_quantizer()
        with pytest.raises(ShapeError):
            q.quantize(rng.normal(size=7), np.zeros(2))


class TestForwardQuantization:
    def test_zero_thresholds_match_lightnn2(self, rng):
        """At t = 0 every gate with non-zero residual fires: FLightNN == LightNN-2."""
        w = rng.normal(scale=0.4, size=(6, 3, 3, 3))
        fl = make_quantizer(k_max=2)
        ln = LightNNQuantizer(LightNNConfig(k=2, pow2=fl.config.pow2))
        np.testing.assert_allclose(fl.quantize(w, np.zeros(2)).quantized, ln.quantize(w))

    def test_quantization_flow_matches_fig2(self):
        """Walk the Fig. 2 flow for a hand-built filter (k = 2)."""
        q = make_quantizer(k_max=2, norm_per_element=False)
        w = np.array([[0.75, -0.375]])  # R: 0.75->1(? log2 0.75=-0.415->0->1) etc.
        t = np.array([0.0, 0.0])
        state = q.quantize(w, t)
        # Level 0: r0 = w, s0 = ||w|| > 0 -> gate on, R(r0) computed.
        assert state.gates[0, 0]
        np.testing.assert_allclose(state.residuals[0], w)
        # Level 1: r1 = w - R(w); gate on iff ||r1|| > 0.
        r1 = w - state.rounded[0]
        np.testing.assert_allclose(state.residuals[1], r1)
        expected = state.rounded[0] + state.gates[1, 0] * state.rounded[1]
        np.testing.assert_allclose(state.quantized, expected)

    def test_huge_threshold_prunes_everything(self, rng):
        q = make_quantizer()
        w = rng.normal(size=(4, 8))
        state = q.quantize(w, np.array([1e9, 1e9]))
        np.testing.assert_allclose(state.quantized, 0.0)
        np.testing.assert_array_equal(q.filter_k(w, np.array([1e9, 1e9])), 0)

    def test_intermediate_threshold_gives_mixed_k(self, rng):
        """Thresholding level 1 by the median residual norm splits filters."""
        q = make_quantizer()
        w = rng.normal(scale=0.4, size=(16, 27))
        norms = q.residual_norms(w, np.zeros(2))
        t1 = float(np.median(norms[1]))
        k = q.filter_k(w, np.array([0.0, t1]))
        assert (k == 1).any() and (k == 2).any()

    def test_output_is_sum_of_powers_of_two(self, rng):
        q = make_quantizer()
        w = rng.normal(scale=0.5, size=(8, 16))
        state = q.quantize(w, np.array([0.0, 0.05]))
        for j in range(2):
            gated = state.gates[j][:, None] * state.rounded[j]
            assert is_power_of_two_value(gated).all()
        np.testing.assert_allclose(
            state.quantized,
            sum(state.gates[j][:, None] * state.rounded[j] for j in range(2)),
        )

    def test_filter_k_ignores_degenerate_levels(self):
        """A level whose rounded residual is all-zero adds no effective shift."""
        q = make_quantizer(exp_min=-3)
        # Weights exactly powers of two: level-1 residual is 0 -> rounded 0.
        w = np.array([[0.5, -0.25, 1.0, 0.5]])
        k = q.filter_k(w, np.zeros(2))
        np.testing.assert_array_equal(k, [1])

    def test_norm_per_element_scaling(self, rng):
        w = rng.normal(size=(3, 100))
        q_rms = make_quantizer(norm_per_element=True)
        q_l2 = make_quantizer(norm_per_element=False)
        s_rms = q_rms.residual_norms(w, np.zeros(2))[0]
        s_l2 = q_l2.residual_norms(w, np.zeros(2))[0]
        np.testing.assert_allclose(s_l2, s_rms * 10.0)

    def test_residual_norms_shape(self, rng):
        q = make_quantizer(k_max=3)
        norms = q.residual_norms(rng.normal(size=(5, 9)), np.zeros(3))
        assert norms.shape == (3, 5)

    def test_residual_norm_decreases_over_active_levels(self, rng):
        q = make_quantizer(k_max=3)
        w = rng.normal(scale=0.5, size=(10, 32))
        norms = q.residual_norms(w, np.zeros(3))
        assert (norms[1] <= norms[0] + 1e-12).all()
        assert (norms[2] <= norms[1] + 1e-12).all()


class TestGradients:
    def test_weight_gradient_is_ste(self, rng):
        q = make_quantizer()
        w = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        t = Tensor(np.zeros(2), requires_grad=True)
        upstream = rng.normal(size=(4, 2, 3, 3))
        q.apply(w, t).backward(upstream)
        np.testing.assert_allclose(w.grad, upstream)

    def test_threshold_gradient_shape(self, rng):
        q = make_quantizer(k_max=3)
        w = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        t = Tensor(np.zeros(3), requires_grad=True)
        q.apply(w, t).backward(rng.normal(size=(4, 8)))
        assert t.grad.shape == (3,)

    def test_threshold_gradient_matches_paper_forward_mode(self, rng):
        """Reverse sweep vs an independent forward-mode coding of Sec. 4.2."""
        cfg = FLightNNConfig(k_max=2, pow2=PowerOfTwoConfig(), norm_per_element=True,
                             sigmoid_temperature=0.05)
        q = FLightNNQuantizer(cfg)
        w_data = rng.normal(scale=0.5, size=(5, 12))
        t_data = rng.uniform(0.0, 0.2, size=2)
        upstream = rng.normal(size=(5, 12))

        w = Tensor(w_data.copy(), requires_grad=True)
        t = Tensor(t_data.copy(), requires_grad=True)
        q.apply(w, t).backward(upstream)
        reverse_grad = t.grad.copy()

        # Forward-mode: propagate d/dt_m through the relaxed recursion.
        state = q.quantize(w_data, t_data)
        scale = 1.0 / np.sqrt(w_data.shape[1])
        tau = cfg.sigmoid_temperature
        forward_grad = np.zeros(2)
        for m in range(2):
            dq = np.zeros_like(w_data)
            dr = np.zeros_like(w_data)
            for level in range(2):
                r = state.residuals[level]
                rounded = state.rounded[level]
                s = state.norms[level]
                sig = _stable_sigmoid((s - t_data[level]) / tau)
                sig_prime = sig * (1 - sig) / tau
                safe = np.where(s > 0, s, 1.0)
                ds = (r / safe[:, None] * scale * dr).sum(axis=1)
                ds[s == 0] = 0.0
                dgate = sig_prime * (ds - (1.0 if level == m else 0.0))
                contribution = dgate[:, None] * rounded + sig[:, None] * dr  # dR := dr (STE)
                dq = dq + contribution
                dr = dr - contribution
            forward_grad[m] = (upstream * dq).sum()
        np.testing.assert_allclose(reverse_grad, forward_grad, rtol=1e-10)

    def test_threshold_gradient_sign_disables_harmful_gate(self, rng):
        """If the level-1 contribution hurts (positive alignment with the
        upstream gradient), gradient descent on t must raise t_1."""
        q = make_quantizer(norm_per_element=False)
        w_data = rng.normal(scale=0.4, size=(3, 8))
        t = Tensor(np.zeros(2), requires_grad=True)
        w = Tensor(w_data, requires_grad=True)
        state = q.quantize(w_data, np.zeros(2))
        # Upstream gradient aligned with the level-1 rounded residual: the
        # second shift is "hurting" the loss.
        upstream = state.rounded[1].copy()
        q.apply(w, t).backward(upstream)
        assert t.grad[1] < 0  # descent step t -= lr*grad increases t_1

    def test_no_threshold_grad_when_not_required(self, rng):
        q = make_quantizer()
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        t = Tensor(np.zeros(2))  # no grad
        q.apply(w, t).backward(rng.normal(size=(3, 4)))
        assert t.grad is None
        assert w.grad is not None


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16), k_max=st.integers(1, 3))
def test_property_k_between_0_and_kmax(seed, k_max):
    rng = np.random.default_rng(seed)
    q = make_quantizer(k_max=k_max)
    w = rng.normal(scale=0.5, size=(8, 18))
    t = rng.uniform(0.0, 0.3, size=k_max)
    k = q.filter_k(w, t)
    assert (k >= 0).all() and (k <= k_max).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_raising_threshold_never_increases_k(seed):
    rng = np.random.default_rng(seed)
    q = make_quantizer()
    w = rng.normal(scale=0.5, size=(10, 12))
    t_low = rng.uniform(0.0, 0.1, size=2)
    t_high = t_low + rng.uniform(0.0, 0.3, size=2)
    assert (q.filter_k(w, t_high) <= q.filter_k(w, t_low)).all()


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_quantization_error_no_worse_than_lightnn1(seed):
    """With t = 0 (all gates on), two shifts approximate at least as well as one."""
    rng = np.random.default_rng(seed)
    q = make_quantizer()
    w = rng.normal(scale=0.5, size=(6, 10))
    err2 = np.abs(w - q.quantize(w, np.zeros(2)).quantized)
    ln1 = LightNNQuantizer(LightNNConfig(k=1, pow2=q.config.pow2))
    err1 = np.abs(w - ln1.quantize(w))
    assert (err2 <= err1 + 1e-12).all()
