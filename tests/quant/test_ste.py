"""Tests for straight-through estimator plumbing."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor
from repro.quant.ste import ste_apply, ste_clipped_apply


class TestSTEApply:
    def test_forward_applies_transform(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        out = ste_apply(x, np.sign)
        np.testing.assert_allclose(out.numpy(), np.sign(x.data))

    def test_backward_is_identity(self, rng):
        x = Tensor(rng.normal(size=5), requires_grad=True)
        upstream = rng.normal(size=5)
        ste_apply(x, np.sign).backward(upstream)
        np.testing.assert_allclose(x.grad, upstream)

    def test_no_grad_without_requires(self, rng):
        x = Tensor(rng.normal(size=5))
        out = ste_apply(x, np.sign)
        assert not out.requires_grad


class TestSTEClipped:
    def test_gradient_masked_outside_range(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        out = ste_clipped_apply(x, lambda a: np.clip(a, -1, 1), low=-1.0, high=1.0)
        out.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])

    def test_forward_transform_used(self):
        x = Tensor(np.array([0.3]), requires_grad=True)
        out = ste_clipped_apply(x, lambda a: np.round(a), low=-1, high=1)
        np.testing.assert_allclose(out.numpy(), [0.0])
