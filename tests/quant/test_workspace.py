"""Tests for the shared quantization-state cache (repro.quant.workspace).

The workspace is the fast path's license to skip redundant level
recursions: it must serve bitwise-identical state while ``(w, t)`` are
unchanged and *never* serve stale state once they move — including
mutations that bypass the version counters, which is exactly what the
numerical gradient checker does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.power_of_two import PowerOfTwoConfig
from repro.quant.regularization import residual_group_lasso
from repro.quant.workspace import QuantWorkspace, array_fingerprint


def quantizer(norm_per_element=False):
    return FLightNNQuantizer(
        FLightNNConfig(k_max=2, pow2=PowerOfTwoConfig(), norm_per_element=norm_per_element)
    )


def bits(a: np.ndarray) -> bytes:
    return np.ascontiguousarray(a).view(np.uint8).tobytes()


@pytest.fixture
def params(rng):
    w = Tensor(rng.normal(scale=0.5, size=(4, 9)), requires_grad=True)
    t = Tensor(np.array([0.05, 0.02]), requires_grad=True)
    return w, t


class TestCaching:
    def test_second_request_is_a_hit(self, params):
        w, t = params
        ws = QuantWorkspace(quantizer())
        first = ws.state(w, t)
        second = ws.state(w, t)
        assert first is second
        assert (ws.hits, ws.misses) == (1, 1)

    def test_served_state_matches_direct_quantize(self, params):
        w, t = params
        q = quantizer()
        state = QuantWorkspace(q).state(w, t)
        direct = q.quantize(w.data, t.data)
        assert bits(state.quantized) == bits(direct.quantized)
        assert bits(state.norms) == bits(direct.norms)
        for got, want in zip(state.residuals, direct.residuals):
            assert bits(got) == bits(want)

    def test_version_bump_invalidates(self, params):
        w, t = params
        ws = QuantWorkspace(quantizer())
        stale = ws.state(w, t)
        w.data[0, 0] += 0.25
        w.bump_version()
        fresh = ws.state(w, t)
        assert fresh is not stale
        assert ws.misses == 2
        assert bits(fresh.quantized) != bits(stale.quantized)

    def test_threshold_version_bump_invalidates(self, params):
        w, t = params
        ws = QuantWorkspace(quantizer())
        ws.state(w, t)
        t.data[0] = 10.0  # gate every filter off at level 0
        t.bump_version()
        fresh = ws.state(w, t)
        assert ws.misses == 2
        assert not fresh.gates[0].any()

    def test_fingerprint_catches_inplace_edit_without_bump(self, params):
        """The gradcheck scenario: data mutates, versions do not."""
        w, t = params
        ws = QuantWorkspace(quantizer())
        ws.state(w, t)
        w.data[1, 3] += 1e-6  # no bump_version on purpose
        fresh = ws.state(w, t)
        assert ws.misses == 2
        assert bits(fresh.residuals[0]) == bits(
            quantizer().quantize(w.data, t.data).residuals[0]
        )

    def test_invalidate_forces_recompute(self, params):
        w, t = params
        ws = QuantWorkspace(quantizer())
        ws.state(w, t)
        ws.invalidate()
        assert ws._state is None
        ws.state(w, t)
        assert (ws.hits, ws.misses) == (0, 2)


class TestFingerprint:
    def test_single_entry_change_moves_fingerprint(self, rng):
        a = rng.normal(size=(6, 6))
        before = array_fingerprint(a)
        a[2, 2] += 1e-9
        assert array_fingerprint(a) != before

    def test_abs_sum_catches_what_plain_sum_misses(self):
        """A zero-sum perturbation still moves the |.| component."""
        a = np.array([1.0, -1.0, 2.0])
        b = np.array([2.0, -2.0, 2.0])  # same sum, different content
        fa, fb = array_fingerprint(a), array_fingerprint(b)
        assert fa[0] == fb[0]
        assert fa[1] != fb[1]


class TestSharedConsumers:
    def test_apply_with_workspace_matches_without(self, params, rng):
        """Forward Q_k(w|t) and both gradients, bitwise, via the cache."""
        q = quantizer()
        g = rng.normal(size=(4, 9))

        def run(workspace):
            w = Tensor(params[0].data.copy(), requires_grad=True)
            t = Tensor(params[1].data.copy(), requires_grad=True)
            wq = q.apply(w, t, workspace=workspace)
            (wq * Tensor(g)).sum().backward()
            return wq.data.copy(), w.grad.copy(), t.grad.copy()

        eager = run(None)
        cached = run(QuantWorkspace(q))
        for e, c in zip(eager, cached):
            assert bits(e) == bits(c)

    def test_regularizer_with_workspace_matches_without(self, params):
        w, t = params
        q = quantizer()
        ws = QuantWorkspace(q)
        ws.state(w, t)  # pre-warm as the training forward pass would

        def run(workspace):
            loss = residual_group_lasso(w, t, (1e-3, 3e-3), q, workspace=workspace)
            loss.backward()
            grad = w.grad.copy()
            w.zero_grad()
            return loss.item(), grad

        loss_e, grad_e = run(None)
        loss_c, grad_c = run(ws)
        assert loss_e == loss_c
        assert bits(grad_e) == bits(grad_c)
        assert ws.hits >= 1

    def test_fused_quantizer_gradcheck(self, params):
        """Numerical gradcheck *through* the workspace.

        ``numerical_gradient`` perturbs ``w.data`` in place without bumping
        versions, so every probe exercises the fingerprint invalidation; a
        workspace that served stale state would fail this check loudly.
        """
        w, t = params
        q = quantizer(norm_per_element=True)
        ws = QuantWorkspace(q)

        def loss():
            return residual_group_lasso(w, t, (1e-2, 3e-2), q, workspace=ws)

        loss()  # warm the cache so the check starts from a cached state
        check_gradients(loss, [w], rtol=1e-3, atol=1e-6)
        assert ws.misses > 1  # the probes really did force recomputation
