"""Tests for quantized layers and weight strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor
from repro.quant.fixed_point import FixedPointFormat
from repro.quant.power_of_two import is_power_of_two_value
from repro.quant.qlayers import (
    FixedPointWeights,
    FLightNNWeights,
    FullPrecisionWeights,
    LightNNWeights,
    QConv2d,
    QLinear,
)
from repro.quant.lightnn import LightNNConfig
from repro.quant.schemes import paper_schemes


class TestStrategies:
    def test_full_precision_identity(self, rng):
        s = FullPrecisionWeights()
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert s.apply(w, None) is w
        np.testing.assert_array_equal(s.filter_k(w.data, None), 0)
        np.testing.assert_array_equal(s.bits_per_weight(w.data, None), 32.0)

    def test_fixed_point_bits(self, rng):
        s = FixedPointWeights(FixedPointFormat(bits=4, frac_bits=3))
        w = rng.normal(size=(5, 9))
        np.testing.assert_array_equal(s.bits_per_weight(w, None), 4.0)
        q = s.quantize_array(w, None)
        assert np.abs(q).max() <= 1.0

    def test_lightnn_bits_scale_with_k(self, rng):
        w = rng.normal(size=(5, 9))
        s1 = LightNNWeights(LightNNConfig(k=1))
        s2 = LightNNWeights(LightNNConfig(k=2))
        np.testing.assert_array_equal(s1.bits_per_weight(w, None), 4.0)
        np.testing.assert_array_equal(s2.bits_per_weight(w, None), 8.0)

    def test_flightnn_requires_thresholds(self, rng):
        s = FLightNNWeights()
        w = rng.normal(size=(3, 4))
        with pytest.raises(ConfigurationError):
            s.quantize_array(w, None)
        with pytest.raises(ConfigurationError):
            s.apply(Tensor(w, requires_grad=True), None)

    def test_flightnn_bits_vary_per_filter(self, rng):
        s = FLightNNWeights()
        w = rng.normal(scale=0.4, size=(12, 27))
        norms = s.quantizer.residual_norms(w, np.zeros(2))
        t = np.array([0.0, float(np.median(norms[1]))])
        bits = s.bits_per_weight(w, t)
        assert len(np.unique(bits)) > 1  # mixed k -> mixed storage


class TestQConv2d:
    def test_forward_uses_quantized_weights(self, rng):
        conv = QConv2d(2, 3, 3, strategy=LightNNWeights(LightNNConfig(k=1)), rng=0)
        assert is_power_of_two_value(conv.quantized_weight()).all()
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        out = conv(x)
        assert out.shape == (1, 3, 3, 3)

    def test_thresholds_only_for_flightnn(self):
        assert QConv2d(1, 2, 3, rng=0).thresholds is None
        fl = QConv2d(1, 2, 3, strategy=FLightNNWeights(), rng=0)
        assert fl.thresholds is not None
        np.testing.assert_allclose(fl.thresholds.data, 0.0)  # paper init

    def test_thresholds_are_trainable_parameters(self):
        fl = QConv2d(1, 2, 3, strategy=FLightNNWeights(), rng=0)
        names = [n for n, _ in fl.named_parameters()]
        assert any("thresholds" in n for n in names)

    def test_master_weights_stay_full_precision(self, rng):
        conv = QConv2d(1, 2, 3, strategy=LightNNWeights(LightNNConfig(k=1)), rng=0)
        before = conv.weight.data.copy()
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        loss = (conv(x) ** 2).sum()
        loss.backward()
        np.testing.assert_array_equal(conv.weight.data, before)
        assert conv.weight.grad is not None

    def test_filter_k_reporting(self):
        conv = QConv2d(2, 4, 3, strategy=FLightNNWeights(), rng=0)
        k = conv.filter_k()
        assert k.shape == (4,)
        assert (k <= 2).all()

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            QConv2d(0, 1, 3)

    def test_output_spatial(self):
        conv = QConv2d(1, 1, 3, stride=2, padding=1, rng=0)
        assert conv.output_spatial(16, 16) == (8, 8)

    def test_repr_shows_strategy(self):
        assert "LightNNWeights" in repr(QConv2d(1, 1, 3, strategy=LightNNWeights(), rng=0))


class TestQLinear:
    def test_forward_shape(self, rng):
        lin = QLinear(6, 4, strategy=FixedPointWeights(), rng=0)
        out = lin(Tensor(rng.normal(size=(3, 6))))
        assert out.shape == (3, 4)

    def test_quantized_weight_on_grid(self):
        lin = QLinear(6, 4, strategy=FixedPointWeights(FixedPointFormat(4, 3)), rng=0)
        q = lin.quantized_weight()
        codes = q / 0.125
        np.testing.assert_allclose(codes, np.rint(codes))

    def test_bias_optional(self):
        assert QLinear(3, 2, bias=False, rng=0).bias is None

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            QLinear(0, 2)

    def test_flightnn_thresholds(self):
        lin = QLinear(8, 4, strategy=FLightNNWeights(), rng=0)
        assert lin.thresholds.shape == (2,)
        assert lin.filter_k().shape == (4,)


class TestSchemes:
    def test_paper_schemes_complete(self):
        schemes = paper_schemes()
        assert set(schemes) == {"Full", "L-2", "L-1", "FP", "FL_a", "FL_b"}

    def test_labels_follow_paper_convention(self):
        schemes = paper_schemes()
        assert schemes["L-2"].name == "L-2_8W8A"
        assert schemes["L-1"].name == "L-1_4W8A"
        assert schemes["FP"].name == "FP_4W8A"

    def test_only_full_keeps_fp32_activations(self):
        schemes = paper_schemes()
        assert not schemes["Full"].quantizes_activations
        for key in ("L-2", "L-1", "FP", "FL_a", "FL_b"):
            assert schemes[key].quantizes_activations
            assert schemes[key].activation.bits == 8

    def test_flightnn_lambdas_stored(self):
        schemes = paper_schemes(fl_lambdas_a=(1e-5, 3e-5))
        assert schemes["FL_a"].lambdas == (1e-5, 3e-5)
        assert schemes["FL_a"].is_flightnn

    def test_shift_multiplier_flag(self):
        schemes = paper_schemes()
        assert schemes["L-1"].uses_shift_multiplier
        assert schemes["FL_a"].uses_shift_multiplier
        assert not schemes["FP"].uses_shift_multiplier
        assert not schemes["Full"].uses_shift_multiplier

    def test_strategy_factories_independent(self):
        scheme = paper_schemes()["FL_a"]
        assert scheme.make_strategy() is not scheme.make_strategy()

    def test_flightnn_lambda_count_validated(self):
        from repro.quant.schemes import scheme_flightnn

        with pytest.raises(ConfigurationError):
            scheme_flightnn((1e-5,), k_max=2)
