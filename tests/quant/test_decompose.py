"""Tests for the Fig. 3 filter decomposition (k=2 -> two k=1 convolutions)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quant.decompose import decompose_filter_bank
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.power_of_two import PowerOfTwoConfig, is_power_of_two_value


def quantizer(k_max=2):
    return FLightNNQuantizer(FLightNNConfig(k_max=k_max, pow2=PowerOfTwoConfig()))


class TestDecomposition:
    def test_reconstruction_exact(self, rng):
        q = quantizer()
        w = rng.normal(scale=0.5, size=(6, 3, 3, 3))
        t = np.array([0.0, 0.02])
        bank = decompose_filter_bank(w, t, q)
        np.testing.assert_allclose(bank.reconstruct(), q.quantize(w, t).quantized)

    def test_every_term_is_single_shift(self, rng):
        q = quantizer()
        w = rng.normal(scale=0.5, size=(4, 2, 3, 3))
        bank = decompose_filter_bank(w, np.zeros(2), q)
        for term in bank.terms:
            assert is_power_of_two_value(term).all()

    def test_total_single_shift_filters(self, rng):
        q = quantizer()
        w = rng.normal(scale=0.5, size=(8, 2, 3, 3))
        norms = q.residual_norms(w, np.zeros(2))
        t = np.array([0.0, float(np.median(norms[1]))])
        bank = decompose_filter_bank(w, t, q)
        assert bank.total_single_shift_filters == int(bank.filter_k.sum())
        assert bank.total_single_shift_filters < 16  # some filters dropped to k=1

    def test_fig3_conv_equivalence(self, rng):
        """conv(x, Q(w)) == sum_j conv(x, term_j) — the paper's Fig. 3."""
        q = quantizer()
        w = rng.normal(scale=0.5, size=(4, 3, 3, 3))
        t = np.array([0.0, 0.05])
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        bank = decompose_filter_bank(w, t, q)
        combined = F.conv2d(x, Tensor(q.quantize(w, t).quantized), padding=1).numpy()
        summed = sum(
            F.conv2d(x, Tensor(term), padding=1).numpy() for term in bank.terms
        )
        np.testing.assert_allclose(combined, summed, rtol=1e-10, atol=1e-12)

    def test_fig3_numeric_example(self):
        """The exact 3x3 example matrix from Fig. 3 splits into two k=1 parts."""
        w = np.array(
            [[[[0.75, 0.5, 0.375], [0.625, 0.75, 0.5], [1.25, 0.625, 0.25]]]]
        )
        q = quantizer()
        bank = decompose_filter_bank(w, np.zeros(2), q)
        np.testing.assert_allclose(bank.reconstruct(), q.quantize(w, np.zeros(2)).quantized)
        assert bank.filter_k[0] == 2
        assert is_power_of_two_value(bank.terms[0]).all()
        assert is_power_of_two_value(bank.terms[1]).all()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16), k_max=st.integers(1, 3))
def test_property_reconstruction_invariant(seed, k_max):
    rng = np.random.default_rng(seed)
    q = quantizer(k_max=k_max)
    w = rng.normal(scale=0.5, size=(5, 2, 2, 2))
    t = rng.uniform(0, 0.2, size=k_max)
    bank = decompose_filter_bank(w, t, q)
    np.testing.assert_allclose(bank.reconstruct(), q.quantize(w, t).quantized)
