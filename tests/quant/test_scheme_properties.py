"""Cross-scheme property tests: approximation-error and storage orderings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.binary import BinaryConnectConfig, binarize
from repro.quant.fixed_point import FixedPointFormat, quantize_fixed_point
from repro.quant.power_of_two import PowerOfTwoConfig, quantize_lightnn
from repro.quant.schemes import paper_schemes

SCHEMES = paper_schemes()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_more_shifts_never_worse(seed):
    """Q_k error is monotone non-increasing in k for every weight."""
    w = np.random.default_rng(seed).normal(scale=0.5, size=128)
    cfg = PowerOfTwoConfig()
    errors = [np.abs(w - quantize_lightnn(w, k, cfg)) for k in (1, 2, 3)]
    assert (errors[1] <= errors[0] + 1e-12).all()
    assert (errors[2] <= errors[1] + 1e-12).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_binary_error_worst_of_all(seed):
    """1-bit weights approximate worse (in MSE) than 1-shift weights."""
    rng = np.random.default_rng(seed)
    w = rng.normal(scale=0.5, size=(8, 16))
    binary = binarize(w, BinaryConnectConfig())
    pow2 = quantize_lightnn(w, 1, PowerOfTwoConfig())
    mse_binary = np.mean((w - binary) ** 2)
    mse_pow2 = np.mean((w - pow2) ** 2)
    assert mse_pow2 <= mse_binary + 1e-12


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), bits=st.integers(3, 8))
def test_property_fixed_point_error_shrinks_with_bits(seed, bits):
    rng = np.random.default_rng(seed)
    w = rng.uniform(-0.9, 0.9, size=64)
    coarse = quantize_fixed_point(w, FixedPointFormat(bits=bits, frac_bits=bits - 1))
    fine = quantize_fixed_point(w, FixedPointFormat(bits=bits + 2, frac_bits=bits + 1))
    assert np.mean((w - fine) ** 2) <= np.mean((w - coarse) ** 2) + 1e-15


class TestSchemeStorageOrdering:
    @pytest.fixture(scope="class")
    def strategies(self, rng=None):
        rng = np.random.default_rng(0)
        w = rng.normal(scale=0.4, size=(6, 3, 3, 3))
        out = {}
        for key in ("Full", "L-2", "L-1", "FP"):
            strategy = SCHEMES[key].make_strategy()
            out[key] = float(strategy.bits_per_weight(w, None).sum())
        return out

    def test_bits_ordering(self, strategies):
        assert strategies["Full"] > strategies["L-2"] > strategies["L-1"]
        assert strategies["L-1"] == strategies["FP"]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_quantizers_are_projections(seed):
    """Every scheme's quantizer is idempotent on its own output."""
    rng = np.random.default_rng(seed)
    w = rng.normal(scale=0.5, size=(4, 9))
    for key in ("L-2", "L-1", "FP"):
        strategy = SCHEMES[key].make_strategy()
        once = strategy.quantize_array(w, None)
        twice = strategy.quantize_array(once, None)
        np.testing.assert_allclose(twice, once, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_flightnn_matches_lightnn_extremes(seed):
    """FLightNN with all-on / all-off gates equals LightNN-2 / zero."""
    rng = np.random.default_rng(seed)
    w = rng.normal(scale=0.5, size=(5, 8))
    fl = SCHEMES["FL_a"].make_strategy()
    l2 = SCHEMES["L-2"].make_strategy()
    np.testing.assert_allclose(
        fl.quantize_array(w, np.zeros(2)), l2.quantize_array(w, None)
    )
    np.testing.assert_allclose(fl.quantize_array(w, np.full(2, 1e9)), 0.0)
