"""Tests for the related-work baselines: BinaryConnect and DoReFa."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.hw import AsicEnergyModel, FPGAModel, network_largest_layer_ops
from repro.models import build_network
from repro.nn.tensor import Tensor
from repro.quant.binary import (
    BinaryConnectConfig,
    BinaryWeights,
    binarize,
    scheme_binaryconnect,
)
from repro.quant.dorefa import DoReFaConfig, DoReFaWeights, dorefa_quantize, scheme_dorefa
from repro.quant.schemes import scheme_lightnn


class TestBinarize:
    def test_output_is_sign_times_scale(self, rng):
        w = rng.normal(size=(4, 6))
        q = binarize(w, BinaryConnectConfig())
        scales = np.abs(w).reshape(4, -1).mean(axis=1)
        np.testing.assert_allclose(np.abs(q), scales[:, None] * np.ones((4, 6)))
        np.testing.assert_array_equal(np.sign(q), np.where(w >= 0, 1.0, -1.0))

    def test_plain_binaryconnect_scale_one(self, rng):
        w = rng.normal(size=(3, 5))
        q = binarize(w, BinaryConnectConfig(per_filter_scale=False))
        assert set(np.unique(q)) <= {-1.0, 1.0}

    def test_clip_validated(self):
        with pytest.raises(QuantizationError):
            BinaryConnectConfig(clip=0.0)

    def test_strategy_one_bit_storage(self, rng):
        s = BinaryWeights()
        w = rng.normal(size=(4, 3, 3, 3))
        np.testing.assert_array_equal(s.bits_per_weight(w, None), 1.0)
        np.testing.assert_array_equal(s.filter_k(w, None), 0)

    def test_ste_clips_gradient(self):
        s = BinaryWeights(BinaryConnectConfig(clip=1.0))
        w = Tensor(np.array([[-2.0, 0.5, 2.0]]), requires_grad=True)
        s.apply(w, None).backward(np.ones((1, 3)))
        np.testing.assert_allclose(w.grad, [[0.0, 1.0, 0.0]])


class TestDoReFa:
    def test_output_on_uniform_grid(self, rng):
        cfg = DoReFaConfig(bits=3)
        q = dorefa_quantize(rng.normal(size=50), cfg)
        codes = (q + 1.0) / 2.0 * cfg.levels
        np.testing.assert_allclose(codes, np.rint(codes), atol=1e-9)
        assert q.min() >= -1.0 and q.max() <= 1.0

    def test_extreme_weight_maps_to_extreme_level(self, rng):
        w = np.array([5.0, -5.0, 0.0])
        q = dorefa_quantize(w, DoReFaConfig(bits=4))
        assert q[0] == pytest.approx(1.0)
        assert q[1] == pytest.approx(-1.0)

    def test_all_zero_input(self):
        np.testing.assert_array_equal(dorefa_quantize(np.zeros(4), DoReFaConfig()), 0.0)

    def test_bits_validated(self):
        with pytest.raises(QuantizationError):
            DoReFaConfig(bits=1)

    def test_more_bits_less_error(self, rng):
        w = rng.normal(size=200)
        err = {
            bits: np.abs(dorefa_quantize(w, DoReFaConfig(bits=bits)) - np.tanh(w) / np.abs(np.tanh(w)).max()).mean()
            for bits in (2, 4, 8)
        }
        assert err[8] < err[4] < err[2]

    def test_strategy_storage(self, rng):
        s = DoReFaWeights(DoReFaConfig(bits=4))
        np.testing.assert_array_equal(s.bits_per_weight(rng.normal(size=(3, 4)), None), 4.0)


class TestSchemesAndHardware:
    def test_scheme_labels(self):
        assert scheme_binaryconnect().name == "BC_1W8A"
        assert scheme_dorefa(4).name == "DF_4W8A"

    def test_binary_storage_quarter_of_lightnn1(self):
        nets = {}
        for scheme in (scheme_binaryconnect(), scheme_lightnn(1)):
            nets[scheme.name] = build_network(
                1, scheme, num_classes=10, image_size=16, width_scale=0.25, rng=0
            )
        assert nets["BC_1W8A"].storage_mb() == pytest.approx(
            nets["L-1_4W8A"].storage_mb() / 4
        )

    def test_binary_cheapest_on_both_hardware_models(self):
        results = {}
        for scheme in (scheme_binaryconnect(), scheme_lightnn(1), scheme_dorefa(4)):
            net = build_network(1, scheme, num_classes=10, image_size=16,
                                width_scale=0.25, rng=0)
            ops = network_largest_layer_ops(net)
            results[scheme.name] = (
                FPGAModel().map_layer(ops).throughput,
                AsicEnergyModel().layer_energy_uj(ops),
            )
        assert results["BC_1W8A"][0] >= results["L-1_4W8A"][0]
        assert results["BC_1W8A"][1] < results["L-1_4W8A"][1]
        assert results["DF_4W8A"][1] > results["L-1_4W8A"][1]

    def test_binary_network_trains(self, rng):
        from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
        from repro.train import TrainConfig, Trainer

        split = generate_synthetic_images(
            SyntheticImageConfig(num_classes=5, image_size=10, train_size=128,
                                 test_size=64, noise=0.4, seed=33)
        )
        net = build_network(1, scheme_binaryconnect(), num_classes=5,
                            image_size=10, width_scale=0.25, rng=0)
        history = Trainer(net, TrainConfig(epochs=4, batch_size=32, lr=3e-3)).fit(split)
        assert history.final.test_accuracy > 0.3  # clearly above 0.2 chance


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_binarize_idempotent_signs(seed):
    w = np.random.default_rng(seed).normal(size=(3, 8))
    cfg = BinaryConnectConfig()
    q1 = binarize(w, cfg)
    q2 = binarize(q1, cfg)
    np.testing.assert_array_equal(np.sign(q1), np.sign(q2))
