"""Tests for the residual group-lasso regularizer (Sec. 4.3 / Fig. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.power_of_two import PowerOfTwoConfig
from repro.quant.regularization import regularization_curve, residual_group_lasso


def quantizer(norm_per_element=False):
    return FLightNNQuantizer(
        FLightNNConfig(k_max=2, pow2=PowerOfTwoConfig(), norm_per_element=norm_per_element)
    )


class TestLossValue:
    def test_matches_manual_computation(self, rng):
        q = quantizer()
        w_data = rng.normal(scale=0.5, size=(4, 9))
        w = Tensor(w_data, requires_grad=True)
        t = Tensor(np.zeros(2))
        lambdas = (1e-5, 3e-5)
        loss = residual_group_lasso(w, t, lambdas, q)
        state = q.quantize(w_data, np.zeros(2))
        expected = sum(
            lam * np.linalg.norm(state.residuals[j], axis=1).sum()
            for j, lam in enumerate(lambdas)
        )
        np.testing.assert_allclose(loss.item(), expected)

    def test_zero_lambdas_zero_loss(self, rng):
        q = quantizer()
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        loss = residual_group_lasso(w, Tensor(np.zeros(2)), (0.0, 0.0), q)
        assert loss.item() == 0.0

    def test_level0_term_is_group_lasso_on_filters(self, rng):
        """lambda_0 * sum_i ||w_i|| — the whole-filter pruning term."""
        q = quantizer()
        w_data = rng.normal(size=(5, 6))
        w = Tensor(w_data, requires_grad=True)
        loss = residual_group_lasso(w, Tensor(np.zeros(2)), (1.0, 0.0), q)
        np.testing.assert_allclose(loss.item(), np.linalg.norm(w_data, axis=1).sum())

    def test_lambda_count_validated(self, rng):
        q = quantizer()
        w = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        with pytest.raises(ConfigurationError):
            residual_group_lasso(w, Tensor(np.zeros(2)), (1e-5,), q)

    def test_negative_lambda_rejected(self, rng):
        q = quantizer()
        w = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        with pytest.raises(ConfigurationError):
            residual_group_lasso(w, Tensor(np.zeros(2)), (-1e-5, 0.0), q)


class TestGradient:
    def test_level0_gradient_is_normalized_filter(self, rng):
        q = quantizer()
        w_data = rng.normal(size=(3, 4))
        w = Tensor(w_data, requires_grad=True)
        residual_group_lasso(w, Tensor(np.zeros(2)), (2.0, 0.0), q).backward()
        expected = 2.0 * w_data / np.linalg.norm(w_data, axis=1, keepdims=True)
        np.testing.assert_allclose(w.grad, expected)

    def test_level1_gradient_points_toward_pow2_grid(self, rng):
        """A descent step on the lambda_1 term must reduce ||w - Q_1(w)||."""
        q = quantizer()
        w_data = rng.normal(scale=0.5, size=(4, 8))
        w = Tensor(w_data.copy(), requires_grad=True)
        residual_group_lasso(w, Tensor(np.zeros(2)), (0.0, 1.0), q).backward()
        stepped = w_data - 1e-3 * w.grad
        state_before = q.quantize(w_data, np.zeros(2))
        state_after = q.quantize(stepped, np.zeros(2))
        before = np.linalg.norm(state_before.residuals[1], axis=1).sum()
        after = np.linalg.norm(state_after.residuals[1], axis=1).sum()
        assert after < before

    def test_zero_filter_gets_zero_gradient(self):
        q = quantizer()
        w = Tensor(np.zeros((2, 3)), requires_grad=True)
        residual_group_lasso(w, Tensor(np.zeros(2)), (1.0, 1.0), q).backward()
        np.testing.assert_allclose(w.grad, 0.0)

    def test_thresholds_receive_no_gradient(self, rng):
        q = quantizer()
        w = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        t = Tensor(np.zeros(2), requires_grad=True)
        residual_group_lasso(w, t, (1e-5, 3e-5), q).backward()
        assert t.grad is None


class TestFig4Curve:
    def test_shape_and_total(self):
        q = quantizer()
        weights = np.linspace(0.0, 2.0, 101)
        rows = regularization_curve(weights, (1e-5, 3e-5), q)
        assert rows.shape == (3, 101)
        np.testing.assert_allclose(rows[2], rows[0] + rows[1])

    def test_first_term_linear_in_weight(self):
        q = quantizer()
        weights = np.linspace(0.0, 2.0, 11)
        rows = regularization_curve(weights, (1e-5, 0.0), q)
        np.testing.assert_allclose(rows[0], 1e-5 * np.abs(weights))

    def test_second_term_vanishes_at_powers_of_two(self):
        q = quantizer()
        rows = regularization_curve(np.array([0.25, 0.5, 1.0, 2.0]), (1e-5, 3e-5), q)
        np.testing.assert_allclose(rows[1], 0.0, atol=1e-12)

    def test_second_term_positive_off_grid(self):
        q = quantizer()
        rows = regularization_curve(np.array([0.7, 1.3]), (1e-5, 3e-5), q)
        assert (rows[1] > 0).all()

    def test_sawtooth_shape_peaks_between_grid_points(self):
        """Fig. 4: the level-1 term rises then falls between adjacent powers."""
        q = quantizer()
        weights = np.linspace(0.51, 0.99, 49)
        rows = regularization_curve(weights, (0.0, 1.0), q)
        term = rows[1]
        peak = term.argmax()
        assert 0 < peak < len(term) - 1
        assert term[0] < term[peak] and term[-1] < term[peak]
