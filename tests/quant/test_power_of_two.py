"""Tests for R(x) rounding and LightNN's recursive Q_k."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.power_of_two import (
    PowerOfTwoConfig,
    is_power_of_two_value,
    quantize_lightnn,
    round_power_of_two,
)


class TestRoundPowerOfTwo:
    def test_exact_powers_fixed(self):
        x = np.array([1.0, 2.0, 0.5, -4.0, -0.25])
        np.testing.assert_allclose(round_power_of_two(x), x)

    def test_rounding_in_exponent_space(self):
        # [log2 3] = [1.585] = 2 -> 4 ; [log2 1.4] = [0.485] = 0 -> 1.
        np.testing.assert_allclose(round_power_of_two(np.array([3.0, 1.4])), [4.0, 1.0])

    def test_geometric_midpoint_behaviour(self):
        # sqrt(2) is the exponent-space midpoint between 1 and 2; values just
        # below round down, just above round up.
        below, above = 2**0.499, 2**0.501
        out = round_power_of_two(np.array([below, above]))
        np.testing.assert_allclose(out, [1.0, 2.0])

    def test_zero_maps_to_zero(self):
        assert round_power_of_two(np.array([0.0]))[0] == 0.0

    def test_sign_preserved(self):
        out = round_power_of_two(np.array([-3.0, 3.0]))
        np.testing.assert_allclose(out, [-4.0, 4.0])

    def test_window_underflow_to_zero(self):
        cfg = PowerOfTwoConfig(exp_min=-3, exp_max=1)
        # 0.05 -> exponent rint(log2 0.05) = -4 < exp_min -> 0.
        np.testing.assert_allclose(round_power_of_two(np.array([0.05]), cfg), [0.0])

    def test_window_overflow_clamps(self):
        cfg = PowerOfTwoConfig(exp_min=-3, exp_max=1)
        np.testing.assert_allclose(round_power_of_two(np.array([100.0, -100.0]), cfg), [2.0, -2.0])

    def test_window_interior_unchanged(self):
        cfg = PowerOfTwoConfig(exp_min=-3, exp_max=1)
        np.testing.assert_allclose(round_power_of_two(np.array([0.3]), cfg), [0.25])

    def test_invalid_window(self):
        with pytest.raises(QuantizationError):
            PowerOfTwoConfig(exp_min=2, exp_max=1)

    def test_config_properties(self):
        cfg = PowerOfTwoConfig(exp_min=-6, exp_max=1)
        assert cfg.levels == 8
        assert cfg.bits_per_term == 4  # sign + 3-bit exponent
        assert cfg.min_magnitude == 2**-6
        assert cfg.max_magnitude == 2.0


class TestQuantizeLightNN:
    def test_k0_is_zero(self, rng):
        w = rng.normal(size=(5,))
        np.testing.assert_allclose(quantize_lightnn(w, 0), 0.0)

    def test_k1_equals_r(self, rng):
        w = rng.normal(size=(20,))
        np.testing.assert_allclose(quantize_lightnn(w, 1), round_power_of_two(w))

    def test_negative_k_rejected(self):
        with pytest.raises(QuantizationError):
            quantize_lightnn(np.ones(2), -1)

    def test_k2_example_from_fig3(self):
        # Fig. 3: 0.75 = 0.5 + 0.25 with k = 2.
        np.testing.assert_allclose(quantize_lightnn(np.array([0.75]), 2), [0.75])

    def test_idempotent_on_quantized_values(self, rng):
        w = rng.normal(size=(30,))
        q = quantize_lightnn(w, 2)
        np.testing.assert_allclose(quantize_lightnn(q, 2), q)

    def test_residual_never_increases_with_k(self, rng):
        w = rng.normal(size=(100,))
        errs = [np.abs(w - quantize_lightnn(w, k)) for k in range(4)]
        for lower, higher in zip(errs, errs[1:]):
            assert (higher <= lower + 1e-12).all()

    def test_window_respected(self, rng):
        cfg = PowerOfTwoConfig(exp_min=-2, exp_max=0)
        q = quantize_lightnn(rng.normal(size=50), 2, cfg)
        # Every value is a sum of two terms from {0, ±2^-2..±2^0}.
        assert np.abs(q).max() <= 2 * cfg.max_magnitude


class TestIsPowerOfTwoValue:
    def test_detects_powers_and_zero(self):
        mask = is_power_of_two_value(np.array([0.0, 1.0, 0.5, -2.0, 3.0, 0.3]))
        np.testing.assert_array_equal(mask, [True, True, True, True, False, False])

    def test_window_restriction(self):
        cfg = PowerOfTwoConfig(exp_min=-1, exp_max=1)
        mask = is_power_of_two_value(np.array([0.25, 0.5, 4.0]), cfg)
        np.testing.assert_array_equal(mask, [False, True, False])


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_property_r_output_is_power_of_two(seed):
    x = np.random.default_rng(seed).normal(scale=2.0, size=64)
    assert is_power_of_two_value(round_power_of_two(x)).all()


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20), k=st.integers(1, 3))
def test_property_qk_is_sum_of_k_powers(seed, k):
    x = np.random.default_rng(seed).normal(size=32)
    q = quantize_lightnn(x, k)
    # Reconstruct greedily: subtracting R(residual) k times must reach q exactly.
    acc = np.zeros_like(x)
    for _ in range(k):
        acc = acc + round_power_of_two(x - acc)
    np.testing.assert_allclose(acc, q)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_property_r_relative_error_bounded(seed):
    # Exponent-space rounding changes a non-zero value by at most a factor
    # in [2^-0.5, 2^0.5].
    x = np.random.default_rng(seed).uniform(0.01, 10.0, size=64)
    r = round_power_of_two(x)
    ratio = r / x
    assert (ratio >= 2**-0.5 - 1e-12).all() and (ratio <= 2**0.5 + 1e-12).all()


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**20))
def test_property_r_is_odd_function(seed):
    x = np.random.default_rng(seed).normal(size=32)
    np.testing.assert_allclose(round_power_of_two(-x), -round_power_of_two(x))
