"""Tests for activation-range calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import build_network
from repro.quant import (
    ActivationObserver,
    calibrate_activations,
    calibration_scale_zero_point,
    fixed_point_format_for,
    paper_schemes,
)
from repro.quant.activations import QuantizedActivation

SCHEMES = paper_schemes()


class TestObserver:
    def test_percentile_validated(self):
        with pytest.raises(ConfigurationError):
            ActivationObserver(percentile=0.0)
        with pytest.raises(ConfigurationError):
            ActivationObserver(percentile=101.0)

    def test_range_is_max_over_batches(self, rng):
        obs = ActivationObserver(percentile=100.0)
        obs.observe(0, np.array([1.0, -2.0]))
        obs.observe(0, np.array([0.5]))
        assert obs.range_for(0) == 2.0

    def test_missing_layer_raises(self):
        with pytest.raises(ConfigurationError):
            ActivationObserver().range_for(3)


class TestCalibration:
    def test_sets_power_of_two_ranges(self, rng):
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        batches = [rng.normal(size=(4, 3, 8, 8)) for _ in range(2)]
        ranges = calibrate_activations(net, batches)
        assert ranges  # at least one quantizer calibrated
        for max_abs in ranges.values():
            assert max_abs > 0
            assert np.log2(max_abs) == np.rint(np.log2(max_abs))

    def test_quantizers_updated_in_place(self, rng):
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        before = [m.config.max_abs for m in net.modules()
                  if isinstance(m, QuantizedActivation) and m.enabled]
        calibrate_activations(net, [rng.normal(scale=0.2, size=(4, 3, 8, 8))])
        after = [m.config.max_abs for m in net.modules()
                 if isinstance(m, QuantizedActivation) and m.enabled]
        assert len(before) == len(after)
        assert before != after  # at least the input quantizer tightens

    def test_full_precision_model_is_noop(self, rng):
        net = build_network(1, SCHEMES["Full"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        assert calibrate_activations(net, [rng.normal(size=(2, 3, 8, 8))]) == {}

    def test_forward_restored_after_calibration(self, rng):
        """Calibration must not leave observation hooks behind."""
        from repro.nn.tensor import Tensor, no_grad

        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        calibrate_activations(net, [rng.normal(size=(2, 3, 8, 8))])
        net.eval()
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        with no_grad():
            out1 = net(x).numpy()
            out2 = net(x).numpy()
        np.testing.assert_array_equal(out1, out2)
        # Outputs must actually be quantized (hooks removed, quantizer active).
        quantizer = next(m for m in net.modules()
                         if isinstance(m, QuantizedActivation) and m.enabled)
        probe = Tensor(rng.normal(size=(2, 2)))
        codes = quantizer(probe).numpy() / quantizer.config.step
        np.testing.assert_allclose(codes, np.rint(codes))

    def test_calibration_tightens_small_activations(self, rng):
        """Tiny activations get a much smaller range than the default 8.0."""
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        ranges = calibrate_activations(net, [0.01 * rng.normal(size=(4, 3, 8, 8))])
        assert min(ranges.values()) < 8.0


class TestFixedPointFormatFor:
    """Edge cases the int8 deployment path (repro.infer.intq) relies on:
    degenerate calibration data must still yield a usable grid."""

    @pytest.mark.parametrize(
        "values",
        [np.zeros(100), np.zeros((2, 3, 4, 4)), np.array([]), np.array([0.0])],
        ids=["all-zero", "all-zero-nchw", "empty", "single-zero"],
    )
    def test_degenerate_batches_yield_valid_format(self, values):
        fmt = fixed_point_format_for(values, bits=8)
        assert np.isfinite(fmt.step) and fmt.step > 0
        assert fmt.max_value > 0

    def test_constant_batch(self):
        fmt = fixed_point_format_for(np.full(64, 1.5), bits=8)
        assert np.isfinite(fmt.step) and fmt.step > 0
        assert fmt.max_value >= 1.5  # constant must be representable

    def test_single_sample_matches_full_batch_of_same_magnitude(self):
        one = fixed_point_format_for(np.array([3.0]), bits=8)
        many = fixed_point_format_for(np.full(1000, 3.0), bits=8)
        assert one == many

    def test_range_is_power_of_two(self, rng):
        fmt = fixed_point_format_for(rng.normal(size=256), bits=8)
        log2_range = np.log2(fmt.step) + fmt.bits - 1
        assert log2_range == np.rint(log2_range)

    def test_nan_inf_rejected(self):
        with pytest.raises(ConfigurationError):
            fixed_point_format_for(np.array([1.0, np.nan]))
        with pytest.raises(ConfigurationError):
            fixed_point_format_for(np.array([1.0, np.inf]))

    def test_percentile_validated(self):
        with pytest.raises(ConfigurationError):
            fixed_point_format_for(np.ones(4), percentile=0.0)
        with pytest.raises(ConfigurationError):
            fixed_point_format_for(np.ones(4), percentile=101.0)

    def test_scale_zero_point_symmetric(self, rng):
        scale, zero_point = calibration_scale_zero_point(rng.normal(size=128))
        assert np.isfinite(scale) and scale > 0
        assert zero_point == 0

    @pytest.mark.parametrize(
        "values",
        [np.zeros(16), np.full(16, 2.0), np.array([0.7])],
        ids=["all-zero", "constant", "single-sample"],
    )
    def test_scale_zero_point_degenerate(self, values):
        scale, zero_point = calibration_scale_zero_point(values)
        assert np.isfinite(scale) and scale > 0
        assert zero_point == 0
