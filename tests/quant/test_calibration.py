"""Tests for activation-range calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.models import build_network
from repro.quant import ActivationObserver, calibrate_activations, paper_schemes
from repro.quant.activations import QuantizedActivation

SCHEMES = paper_schemes()


class TestObserver:
    def test_percentile_validated(self):
        with pytest.raises(ConfigurationError):
            ActivationObserver(percentile=0.0)
        with pytest.raises(ConfigurationError):
            ActivationObserver(percentile=101.0)

    def test_range_is_max_over_batches(self, rng):
        obs = ActivationObserver(percentile=100.0)
        obs.observe(0, np.array([1.0, -2.0]))
        obs.observe(0, np.array([0.5]))
        assert obs.range_for(0) == 2.0

    def test_missing_layer_raises(self):
        with pytest.raises(ConfigurationError):
            ActivationObserver().range_for(3)


class TestCalibration:
    def test_sets_power_of_two_ranges(self, rng):
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        batches = [rng.normal(size=(4, 3, 8, 8)) for _ in range(2)]
        ranges = calibrate_activations(net, batches)
        assert ranges  # at least one quantizer calibrated
        for max_abs in ranges.values():
            assert max_abs > 0
            assert np.log2(max_abs) == np.rint(np.log2(max_abs))

    def test_quantizers_updated_in_place(self, rng):
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        before = [m.config.max_abs for m in net.modules()
                  if isinstance(m, QuantizedActivation) and m.enabled]
        calibrate_activations(net, [rng.normal(scale=0.2, size=(4, 3, 8, 8))])
        after = [m.config.max_abs for m in net.modules()
                 if isinstance(m, QuantizedActivation) and m.enabled]
        assert len(before) == len(after)
        assert before != after  # at least the input quantizer tightens

    def test_full_precision_model_is_noop(self, rng):
        net = build_network(1, SCHEMES["Full"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        assert calibrate_activations(net, [rng.normal(size=(2, 3, 8, 8))]) == {}

    def test_forward_restored_after_calibration(self, rng):
        """Calibration must not leave observation hooks behind."""
        from repro.nn.tensor import Tensor, no_grad

        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        calibrate_activations(net, [rng.normal(size=(2, 3, 8, 8))])
        net.eval()
        x = Tensor(rng.normal(size=(1, 3, 8, 8)))
        with no_grad():
            out1 = net(x).numpy()
            out2 = net(x).numpy()
        np.testing.assert_array_equal(out1, out2)
        # Outputs must actually be quantized (hooks removed, quantizer active).
        quantizer = next(m for m in net.modules()
                         if isinstance(m, QuantizedActivation) and m.enabled)
        probe = Tensor(rng.normal(size=(2, 2)))
        codes = quantizer(probe).numpy() / quantizer.config.step
        np.testing.assert_allclose(codes, np.rint(codes))

    def test_calibration_tightens_small_activations(self, rng):
        """Tiny activations get a much smaller range than the default 8.0."""
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        ranges = calibrate_activations(net, [0.01 * rng.normal(size=(4, 3, 8, 8))])
        assert min(ranges.values()) < 8.0
