"""Tests for the proximal group-lasso operator and gate-pressure gradient."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ShapeError
from repro.quant.flightnn import FLightNNConfig, FLightNNQuantizer
from repro.quant.power_of_two import PowerOfTwoConfig
from repro.quant.regularization import proximal_residual_shrink


def quantizer(temp=0.02):
    return FLightNNQuantizer(FLightNNConfig(k_max=2, sigmoid_temperature=temp))


class TestProximalShrink:
    def test_zero_lambda_is_identity(self, rng):
        q = quantizer()
        w = rng.normal(size=(4, 9))
        out = proximal_residual_shrink(w, np.zeros(2), (0.0, 0.0), q, step_size=1e-3)
        np.testing.assert_array_equal(out, w)

    def test_zero_step_is_identity(self, rng):
        q = quantizer()
        w = rng.normal(size=(4, 9))
        out = proximal_residual_shrink(w, np.zeros(2), (1.0, 1.0), q, step_size=0.0)
        np.testing.assert_allclose(out, w)

    def test_level1_shrink_reduces_residual_norm(self, rng):
        q = quantizer()
        w = rng.normal(scale=0.4, size=(6, 12))
        out = proximal_residual_shrink(w, np.zeros(2), (0.0, 0.5), q, step_size=1e-2)
        before = q.residual_norms(w, np.zeros(2))[1]
        after = q.residual_norms(out, np.zeros(2))[1]
        assert (after <= before + 1e-12).all()
        assert after.sum() < before.sum()

    def test_large_lambda_snaps_exactly_to_grid(self, rng):
        """The group-lasso exact-zero property: residual becomes exactly 0."""
        q = quantizer()
        w = rng.normal(scale=0.4, size=(3, 8))
        out = proximal_residual_shrink(w, np.zeros(2), (0.0, 1e6), q, step_size=1.0)
        residual = q.residual_norms(out, np.zeros(2))[1]
        np.testing.assert_allclose(residual, 0.0, atol=1e-15)
        # With a zero level-1 residual the filter needs only one shift.
        np.testing.assert_array_equal(q.filter_k(out, np.zeros(2)), 1)

    def test_level0_shrink_moves_filters_toward_zero(self, rng):
        q = quantizer()
        w = rng.normal(size=(4, 6))
        out = proximal_residual_shrink(w, np.zeros(2), (0.3, 0.0), q, step_size=1e-2)
        assert np.linalg.norm(out) < np.linalg.norm(w)

    def test_does_not_mutate_input(self, rng):
        q = quantizer()
        w = rng.normal(size=(3, 4))
        copy = w.copy()
        proximal_residual_shrink(w, np.zeros(2), (0.1, 0.1), q, step_size=1e-2)
        np.testing.assert_array_equal(w, copy)

    def test_validation(self, rng):
        q = quantizer()
        w = rng.normal(size=(2, 3))
        with pytest.raises(ConfigurationError):
            proximal_residual_shrink(w, np.zeros(2), (0.1,), q, step_size=1e-2)
        with pytest.raises(ConfigurationError):
            proximal_residual_shrink(w, np.zeros(2), (-0.1, 0.0), q, step_size=1e-2)
        with pytest.raises(ConfigurationError):
            proximal_residual_shrink(w, np.zeros(2), (0.1, 0.1), q, step_size=-1.0)


class TestGatePressure:
    def test_gradient_shape_and_sign(self, rng):
        q = quantizer()
        w = rng.normal(scale=0.4, size=(8, 12))
        grad = q.gate_pressure_gradient(w, np.zeros(2), np.array([0.1, 0.1]))
        assert grad.shape == (2,)
        # Pressure is always downhill for t (i.e. gradient <= 0 so SGD raises t).
        assert (grad <= 0).all()

    def test_zero_lambda_zero_pressure(self, rng):
        q = quantizer()
        w = rng.normal(size=(4, 6))
        grad = q.gate_pressure_gradient(w, np.zeros(2), np.zeros(2))
        np.testing.assert_array_equal(grad, 0.0)

    def test_pressure_scales_with_lambda(self, rng):
        q = quantizer()
        w = rng.normal(scale=0.4, size=(4, 6))
        weak = q.gate_pressure_gradient(w, np.zeros(2), np.array([0.0, 0.1]))
        strong = q.gate_pressure_gradient(w, np.zeros(2), np.array([0.0, 0.4]))
        np.testing.assert_allclose(strong, 4 * weak)

    def test_pressure_vanishes_far_from_boundary(self, rng):
        """Once t sits far above every s, sigma' -> 0 and pressure stops."""
        q = quantizer(temp=0.02)
        w = rng.normal(scale=0.4, size=(4, 6))
        far = q.gate_pressure_gradient(w, np.array([10.0, 10.0]), np.array([1.0, 1.0]))
        near = q.gate_pressure_gradient(w, np.zeros(2), np.array([1.0, 1.0]))
        assert np.abs(far).max() < 1e-12
        assert np.abs(near).max() > 0

    def test_lambda_shape_validated(self, rng):
        q = quantizer()
        with pytest.raises(ShapeError):
            q.gate_pressure_gradient(rng.normal(size=(2, 3)), np.zeros(2), np.zeros(3))


class TestSigmoidTemperature:
    def test_config_validation(self):
        with pytest.raises(Exception):
            FLightNNConfig(sigmoid_temperature=0.0)

    def test_smaller_temperature_sharper_selectivity(self, rng):
        """At small tau, filters far from the boundary feel ~no gradient."""
        w = rng.normal(scale=0.4, size=(16, 12))
        sharp = quantizer(temp=0.005)
        soft = quantizer(temp=1.0)
        norms = sharp.residual_norms(w, np.zeros(2))[1]
        t = np.array([0.0, float(np.median(norms))])
        # Ratio of per-filter sigma' between the closest and farthest filter.
        from repro.nn.tensor import _stable_sigmoid

        def selectivity(q):
            s = q.residual_norms(w, t)[1]
            tau = q.config.sigmoid_temperature
            sp = _stable_sigmoid((s - t[1]) / tau)
            sp = sp * (1 - sp)
            return sp.max() / max(sp.min(), 1e-300)

        assert selectivity(sharp) > selectivity(soft) * 10
