"""Tests for the FLightNN lambda sweep."""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.errors import ConfigurationError
from repro.train import TrainConfig, sweep_flightnn_lambdas


@pytest.fixture(scope="module")
def split():
    return generate_synthetic_images(
        SyntheticImageConfig(num_classes=5, image_size=10, train_size=128,
                             test_size=64, noise=0.4, seed=55)
    )


def sweep_config():
    return TrainConfig(epochs=4, batch_size=32, lr=3e-3, lambda_warmup_epochs=1,
                       threshold_freeze_epoch=2, threshold_lr_scale=10.0)


class TestSweep:
    def test_empty_lambdas_rejected(self, split):
        with pytest.raises(ConfigurationError):
            sweep_flightnn_lambdas(1, split, [], sweep_config())

    def test_points_cover_cost_range(self, split):
        points = sweep_flightnn_lambdas(
            1, split, [0.001, 0.05], sweep_config(), width_scale=0.2, rng_seed=1
        )
        assert len(points) == 2
        weak, strong = points
        assert weak.lambda_1 < strong.lambda_1
        assert strong.mean_filter_k <= weak.mean_filter_k
        assert strong.storage_mb <= weak.storage_mb + 1e-9
        assert strong.energy_uj <= weak.energy_uj + 1e-12

    def test_point_pair_accessors(self, split):
        (point,) = sweep_flightnn_lambdas(
            1, split, [0.01], sweep_config(), width_scale=0.2
        )
        assert point.storage_accuracy == (point.storage_mb, point.accuracy)
        assert point.energy_accuracy == (point.energy_uj, point.accuracy)
        assert 0.0 <= point.accuracy <= 100.0
