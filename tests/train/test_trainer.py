"""Integration tests for the Algorithm-1 trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.errors import ConfigurationError
from repro.models import build_network
from repro.quant.schemes import paper_schemes, scheme_flightnn
from repro.train import TrainConfig, Trainer

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def split():
    cfg = SyntheticImageConfig(
        num_classes=5, image_size=10, train_size=160, test_size=80, noise=0.4, seed=21
    )
    return generate_synthetic_images(cfg)


def small_net(scheme, split, rng=0):
    return build_network(
        1, scheme, num_classes=split.num_classes,
        image_size=split.image_shape[1], width_scale=0.2, rng=rng,
    )


class TestConfigValidation:
    def test_epochs_positive(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(epochs=0)

    def test_optimizer_name(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(optimizer="rmsprop")

    def test_threshold_scale_positive(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(threshold_lr_scale=0.0)


class TestTraining:
    def test_full_precision_learns(self, split):
        net = small_net(SCHEMES["Full"], split)
        history = Trainer(net, TrainConfig(epochs=4, batch_size=32, lr=3e-3)).fit(split)
        assert history.final.test_accuracy > 0.5
        assert history.final.train_loss < history.epochs[0].train_loss

    def test_lightnn1_learns_above_chance(self, split):
        net = small_net(SCHEMES["L-1"], split)
        history = Trainer(net, TrainConfig(epochs=4, batch_size=32, lr=3e-3)).fit(split)
        assert history.final.test_accuracy > 0.4
        assert history.final.mean_filter_k == pytest.approx(1.0)

    def test_flightnn_trains_and_reports_k(self, split):
        scheme = scheme_flightnn((3e-4, 1e-3), label="FL_test")
        net = small_net(scheme, split)
        history = Trainer(net, TrainConfig(epochs=4, batch_size=32, lr=3e-3)).fit(split)
        assert history.final.test_accuracy > 0.35
        assert 0.0 <= history.final.mean_filter_k <= 2.0

    def test_strong_lambda_reduces_mean_k(self, split):
        """The paper's knob: larger lambda -> fewer shifts per filter."""
        results = {}
        for label, lambdas in (("weak", (0.0, 0.001)), ("strong", (0.0, 0.05))):
            net = small_net(scheme_flightnn(lambdas, label=label), split, rng=1)
            config = TrainConfig(epochs=6, batch_size=32, lr=3e-3,
                                 lambda_warmup_epochs=2, threshold_freeze_epoch=4,
                                 threshold_lr_scale=10.0)
            history = Trainer(net, config).fit(split)
            results[label] = history.final.mean_filter_k
        assert results["strong"] < results["weak"]
        assert results["strong"] <= 1.3
        assert results["weak"] >= 1.6

    def test_gradient_mode_supported(self, split):
        """The paper's literal formulation (loss term) also trains."""
        net = small_net(scheme_flightnn((1e-5, 3e-5)), split)
        config = TrainConfig(epochs=2, batch_size=32, lr=3e-3,
                             regularization_mode="gradient")
        history = Trainer(net, config).fit(split)
        assert history.final.train_loss < history.epochs[0].train_loss

    def test_gate_pressure_raises_thresholds(self, split):
        net = small_net(scheme_flightnn((0.1, 0.3)), split, rng=1)
        config = TrainConfig(epochs=3, batch_size=32, lr=3e-3,
                             threshold_lr_scale=10.0)
        Trainer(net, config).fit(split)
        thresholds = np.concatenate(
            [l.thresholds.data for l in net.conv_layers() if l.thresholds is not None]
        )
        assert (thresholds > 0).any()

    def test_invalid_regularization_mode(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(regularization_mode="magic")

    def test_negative_gate_pressure_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(gate_pressure=-1.0)

    def test_sgd_optimizer_supported(self, split):
        net = small_net(SCHEMES["Full"], split)
        history = Trainer(net, TrainConfig(epochs=2, batch_size=32, lr=0.05,
                                           optimizer="sgd")).fit(split)
        assert history.final.train_loss < history.epochs[0].train_loss

    def test_history_bookkeeping(self, split):
        net = small_net(SCHEMES["L-2"], split)
        history = Trainer(net, TrainConfig(epochs=3, batch_size=32)).fit(split)
        assert len(history.epochs) == 3
        assert history.scheme_name == "L-2_8W8A"
        assert history.best_test_accuracy >= history.final.test_accuracy - 1e-9
        d = history.as_dict()
        assert len(d["epochs"]) == 3 and d["network_id"] == 1

    def test_history_final_empty_raises(self):
        from repro.train.history import TrainHistory

        with pytest.raises(IndexError):
            TrainHistory("x", 1).final

    def test_evaluate_returns_all_metrics(self, split):
        net = small_net(SCHEMES["Full"], split)
        out = Trainer(net, TrainConfig(epochs=1)).evaluate(split.test)
        assert set(out) == {"loss", "accuracy", "top5"}
        assert out["top5"] >= out["accuracy"]

    def test_regularization_loss_only_for_flightnn(self, split):
        fl = Trainer(small_net(scheme_flightnn((1e-5, 3e-5)), split))
        assert fl.regularization_loss() is not None
        base = Trainer(small_net(SCHEMES["L-1"], split))
        assert base.regularization_loss() is None

    def test_deterministic_given_seeds(self, split):
        accs = []
        for _ in range(2):
            net = small_net(SCHEMES["Full"], split, rng=3)
            history = Trainer(net, TrainConfig(epochs=2, batch_size=32, seed=3)).fit(split)
            accs.append(history.final.test_accuracy)
        assert accs[0] == accs[1]
