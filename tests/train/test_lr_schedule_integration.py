"""Tests for learning-rate schedules wired into the Trainer."""

from __future__ import annotations

import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.errors import ConfigurationError
from repro.models import build_network
from repro.quant.schemes import paper_schemes
from repro.train import TrainConfig, Trainer

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def split():
    return generate_synthetic_images(
        SyntheticImageConfig(num_classes=4, image_size=8, train_size=64,
                             test_size=32, noise=0.4, seed=88)
    )


def run(split, schedule, epochs=4):
    net = build_network(1, SCHEMES["Full"], num_classes=4, image_size=8,
                        width_scale=0.15, rng=0)
    config = TrainConfig(epochs=epochs, batch_size=32, lr=3e-3, lr_schedule=schedule)
    return Trainer(net, config).fit(split)


class TestLrSchedules:
    def test_constant_keeps_lr(self, split):
        history = run(split, "constant")
        assert all(e.learning_rate == pytest.approx(3e-3) for e in history.epochs)

    def test_cosine_decays_lr(self, split):
        history = run(split, "cosine")
        lrs = [e.learning_rate for e in history.epochs]
        # Recorded LR is the value used during that epoch: starts at base,
        # and the post-epoch scheduler steps show up in later epochs.
        assert lrs[0] == pytest.approx(3e-3)
        assert lrs[-1] < lrs[0]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_step_decays_at_two_thirds(self, split):
        history = run(split, "step", epochs=6)
        lrs = [e.learning_rate for e in history.epochs]
        assert lrs[0] == pytest.approx(3e-3)
        assert lrs[-1] == pytest.approx(3e-4)

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(lr_schedule="linear")

    def test_all_schedules_still_learn(self, split):
        for schedule in ("constant", "cosine", "step"):
            history = run(split, schedule)
            assert history.final.train_loss < history.epochs[0].train_loss
