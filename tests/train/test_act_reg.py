"""Tests for the activation-distribution regularizer (future-work item)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.errors import ConfigurationError
from repro.models import build_network
from repro.nn.tensor import Tensor
from repro.quant.activations import QuantizedActivation
from repro.quant.schemes import paper_schemes
from repro.train import TrainConfig, Trainer
from repro.train.act_reg import activation_distribution_loss, collect_quantizer_inputs

SCHEMES = paper_schemes()


class TestLoss:
    def test_zero_coefficient_disables(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert activation_distribution_loss([x], 0.0) is None

    def test_empty_inputs(self):
        assert activation_distribution_loss([], 1.0) is None

    def test_validation(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        with pytest.raises(ConfigurationError):
            activation_distribution_loss([x], -1.0)
        with pytest.raises(ConfigurationError):
            activation_distribution_loss([x], 1.0, target_std=0.0)

    def test_zero_for_standardized_input(self, rng):
        data = rng.normal(size=(256, 8))
        data = (data - data.mean(axis=0)) / data.std(axis=0)
        loss = activation_distribution_loss([Tensor(data, requires_grad=True)], 1.0)
        assert loss.item() < 1e-3

    def test_penalises_shifted_and_collapsed(self, rng):
        good = Tensor(rng.normal(size=(128, 4)), requires_grad=True)
        shifted = Tensor(rng.normal(loc=3.0, size=(128, 4)), requires_grad=True)
        collapsed = Tensor(0.01 * rng.normal(size=(128, 4)), requires_grad=True)
        l_good = activation_distribution_loss([good], 1.0).item()
        assert activation_distribution_loss([shifted], 1.0).item() > l_good + 1.0
        assert activation_distribution_loss([collapsed], 1.0).item() > l_good + 0.5

    def test_gradient_recentres(self, rng):
        x = Tensor(rng.normal(loc=2.0, size=(64, 4)), requires_grad=True)
        activation_distribution_loss([x], 1.0).backward()
        # A descent step must reduce the mean offset.
        stepped = x.data - 0.5 * x.grad
        assert abs(stepped.mean()) < abs(x.data.mean())

    def test_4d_uses_channel_statistics(self, rng):
        x = Tensor(rng.normal(size=(8, 3, 5, 5)), requires_grad=True)
        loss = activation_distribution_loss([x], 1.0)
        assert np.isfinite(loss.item())


class TestIntegration:
    def test_collect_requires_recording(self, rng):
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=8,
                            width_scale=0.15, rng=0)
        net(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert collect_quantizer_inputs(net) == []
        for m in net.modules():
            if isinstance(m, QuantizedActivation):
                m.record_input = True
        net(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert len(collect_quantizer_inputs(net)) > 0

    def test_trainer_option_trains(self):
        split = generate_synthetic_images(
            SyntheticImageConfig(num_classes=5, image_size=10, train_size=96,
                                 test_size=48, noise=0.4, seed=66)
        )
        net = build_network(1, SCHEMES["L-1"], num_classes=5, image_size=10,
                            width_scale=0.2, rng=0)
        config = TrainConfig(epochs=3, batch_size=32, lr=3e-3, activation_reg=0.01)
        history = Trainer(net, config).fit(split)
        assert history.final.train_loss < history.epochs[0].train_loss

    def test_trainer_validates_coefficient(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(activation_reg=-0.1)
