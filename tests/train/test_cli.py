"""Tests for the command-line training entry point."""

from __future__ import annotations

import pytest

from repro.train.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.network == 1
        assert args.scheme == "FL_a"
        assert args.epochs == 8

    def test_invalid_network_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--network", "9"])

    def test_invalid_scheme_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheme", "L-3"])


class TestMain:
    def test_tiny_training_run(self, capsys, tmp_path):
        code = main([
            "--network", "1", "--scheme", "L-1", "--epochs", "2",
            "--width-scale", "0.15", "--size-scale", "0.3",
            "--samples", "96", "--checkpoint", str(tmp_path / "m.npz"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch 1" in out
        assert "checkpoint written" in out
        assert (tmp_path / "m.npz").exists()

    def test_summary_flag(self, capsys):
        code = main([
            "--network", "4", "--scheme", "Full", "--epochs", "1",
            "--width-scale", "0.2", "--size-scale", "0.3", "--samples", "64",
            "--summary",
        ])
        assert code == 0
        assert "total" in capsys.readouterr().out

    def test_data_file_path(self, capsys, tmp_path):
        from repro.data import make_cifar10_like, save_npz_split

        archive = save_npz_split(
            make_cifar10_like(size_scale=0.25, samples=48), tmp_path / "ds.npz"
        )
        code = main([
            "--data-file", str(archive), "--scheme", "L-1", "--epochs", "1",
            "--width-scale", "0.15",
        ])
        assert code == 0
        assert "ds" in capsys.readouterr().out

    def test_checkpoint_dir_and_resume(self, capsys, tmp_path):
        argv = [
            "--network", "1", "--scheme", "L-1", "--epochs", "2",
            "--width-scale", "0.15", "--size-scale", "0.3", "--samples", "96",
            "--checkpoint-dir", str(tmp_path / "ck"),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "epoch 1" in first
        assert (tmp_path / "ck" / "latest.json").exists()
        # Resuming a completed run restores the history and trains no further.
        assert main(argv + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "epoch 1" in resumed

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            main(["--resume"])

    def test_dataset_defaults_to_networks_table1_dataset(self, capsys):
        code = main([
            "--network", "6", "--scheme", "Full", "--epochs", "1",
            "--width-scale", "0.1", "--size-scale", "0.25", "--samples", "48",
        ])
        assert code == 0
        assert "cifar100" in capsys.readouterr().out
