"""Fault-tolerant training: checkpoint/resume, guardrails, fault injection.

Every recovery path is proven with the deterministic injectors from
:mod:`repro.testing.faults`: torn checkpoint writes fall back a generation
and resume bitwise-identically, NaN gradients trigger rollback + LR
reduction instead of a crash, and failed writes never corrupt the store.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.synthetic import SyntheticImageConfig, generate_synthetic_images
from repro.errors import CheckpointError, ConfigurationError, TrainingDivergedError
from repro.models import build_network
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, CosineDecayLR, StepDecayLR
from repro.quant.schemes import paper_schemes, scheme_flightnn
from repro.testing import FailingWriteFault, NaNGradientFault, TornWriteFault
from repro.train import (
    DivergenceMonitor,
    TrainConfig,
    Trainer,
    TrainingCheckpoint,
    clip_grad_norm,
    global_grad_norm,
    grads_are_finite,
)
from repro.train.history import EpochStats

SCHEMES = paper_schemes()


@pytest.fixture(scope="module")
def split():
    cfg = SyntheticImageConfig(
        num_classes=5, image_size=10, train_size=160, test_size=80, noise=0.4, seed=21
    )
    return generate_synthetic_images(cfg)


def flightnn_net(split, rng=0):
    return build_network(
        1, scheme_flightnn((3e-4, 1e-3), label="FL_res"), num_classes=split.num_classes,
        image_size=split.image_shape[1], width_scale=0.2, rng=rng,
    )


# FLightNN config so threshold SGD, lambda warmup and the cosine schedule are
# all exercised by the resume paths; 160/32 = 5 batches per epoch.
FL_CONFIG = TrainConfig(
    epochs=4, batch_size=32, lr=3e-3, lambda_warmup_epochs=2,
    threshold_lr_scale=10.0, lr_schedule="cosine", seed=3,
)
BATCHES_PER_EPOCH = 5


class _Crash(Exception):
    """Stands in for SIGKILL: aborts fit() mid-run without cleanup."""


def crash_at_step(step: int):
    def hook(s: int) -> None:
        if s == step:
            raise _Crash(f"injected crash at step {s}")
    return hook


def assert_states_equal(a: Trainer, b: Trainer) -> None:
    """Bitwise equality of weights, thresholds, Adam moments and LR state."""
    sa, sb = a.model.state_dict(), b.model.state_dict()
    assert sa.keys() == sb.keys()
    for name in sa:
        np.testing.assert_array_equal(sa[name], sb[name], err_msg=name)
    assert a.optimizer._t == b.optimizer._t
    for ma, mb in zip(a.optimizer._m, b.optimizer._m):
        np.testing.assert_array_equal(ma, mb)
    for va, vb in zip(a.optimizer._v, b.optimizer._v):
        np.testing.assert_array_equal(va, vb)
    assert a.optimizer.lr == b.optimizer.lr
    if a.threshold_optimizer is not None:
        assert a.threshold_optimizer.lr == b.threshold_optimizer.lr
        for va, vb in zip(a.threshold_optimizer._velocity, b.threshold_optimizer._velocity):
            np.testing.assert_array_equal(va, vb)


# -- optimizer / scheduler state dicts ----------------------------------------


class TestOptimizerState:
    def _step(self, opt, params, grads):
        for p, g in zip(params, grads):
            p.grad = g.copy()
        opt.step()

    def test_adam_round_trip_continues_identically(self, rng):
        params_a = [Parameter(rng.normal(size=(4, 3))), Parameter(rng.normal(size=(5,)))]
        params_b = [Parameter(p.data.copy()) for p in params_a]
        opt_a = Adam(params_a, lr=1e-2)
        grads = [rng.normal(size=p.data.shape) for p in params_a]
        self._step(opt_a, params_a, grads)
        opt_b = Adam(params_b, lr=0.5)  # different lr, zero moments
        for p_a, p_b in zip(params_a, params_b):
            p_b.data[...] = p_a.data
        opt_b.load_state_dict(opt_a.state_dict())
        assert opt_b.lr == opt_a.lr and opt_b._t == opt_a._t
        grads2 = [rng.normal(size=p.data.shape) for p in params_a]
        self._step(opt_a, params_a, grads2)
        self._step(opt_b, params_b, grads2)
        for p_a, p_b in zip(params_a, params_b):
            np.testing.assert_array_equal(p_a.data, p_b.data)

    def test_sgd_momentum_round_trip(self, rng):
        params_a = [Parameter(rng.normal(size=(6,)))]
        params_b = [Parameter(params_a[0].data.copy())]
        opt_a = SGD(params_a, lr=0.1, momentum=0.9)
        self._step(opt_a, params_a, [rng.normal(size=(6,))])
        opt_b = SGD(params_b, lr=0.1, momentum=0.9)
        params_b[0].data[...] = params_a[0].data
        opt_b.load_state_dict(opt_a.state_dict())
        g = rng.normal(size=(6,))
        self._step(opt_a, params_a, [g])
        self._step(opt_b, params_b, [g])
        np.testing.assert_array_equal(params_a[0].data, params_b[0].data)

    def test_state_dict_arrays_are_copies(self, rng):
        params = [Parameter(rng.normal(size=(3,)))]
        opt = Adam(params, lr=1e-2)
        self._step(opt, params, [rng.normal(size=(3,))])
        state = opt.state_dict()
        state["m"][0][...] = 123.0
        assert not np.any(opt._m[0] == 123.0)

    def test_buffer_count_mismatch_rejected(self, rng):
        opt = Adam([Parameter(rng.normal(size=(3,)))], lr=1e-2)
        state = opt.state_dict()
        state["m"] = []
        with pytest.raises(ConfigurationError):
            opt.load_state_dict(state)

    def test_buffer_shape_mismatch_rejected(self, rng):
        opt = SGD([Parameter(rng.normal(size=(3,)))], lr=0.1, momentum=0.5)
        state = opt.state_dict()
        state["velocity"] = [np.zeros((7,))]
        with pytest.raises(ConfigurationError):
            opt.load_state_dict(state)

    def test_missing_lr_rejected(self, rng):
        opt = SGD([Parameter(rng.normal(size=(3,)))], lr=0.1)
        with pytest.raises(ConfigurationError):
            opt.load_state_dict({"velocity": [np.zeros((3,))]})

    def test_scheduler_round_trip(self, rng):
        opt = SGD([Parameter(rng.normal(size=(3,)))], lr=0.1)
        sched = CosineDecayLR(opt, total_epochs=10)
        for _ in range(4):
            sched.step()
        opt2 = SGD([Parameter(rng.normal(size=(3,)))], lr=0.1)
        sched2 = CosineDecayLR(opt2, total_epochs=10)
        sched2.load_state_dict(sched.state_dict())
        opt2.lr = opt.lr
        assert sched2.step() == sched.step()

    def test_step_decay_scheduler_round_trip(self, rng):
        opt = SGD([Parameter(rng.normal(size=(3,)))], lr=0.1)
        sched = StepDecayLR(opt, step_size=2)
        sched.step(), sched.step()
        restored = StepDecayLR(SGD([Parameter(rng.normal(size=(3,)))], lr=0.1), step_size=2)
        restored.load_state_dict(sched.state_dict())
        assert restored.step() == sched.step()


# -- guardrail primitives -----------------------------------------------------


class TestGuardrailPrimitives:
    def test_global_grad_norm(self):
        a, b = Parameter(np.zeros(3)), Parameter(np.zeros(4))
        a.grad = np.full(3, 2.0)
        b.grad = None
        assert global_grad_norm([a, b]) == pytest.approx(math.sqrt(12.0))

    def test_clip_scales_to_max_norm(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 3.0)
        norm, clipped = clip_grad_norm([p], max_norm=1.0)
        assert clipped and norm == pytest.approx(6.0)
        assert global_grad_norm([p]) == pytest.approx(1.0)

    def test_clip_noop_below_max(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([0.1, 0.1])
        _, clipped = clip_grad_norm([p], max_norm=10.0)
        assert not clipped
        np.testing.assert_array_equal(p.grad, [0.1, 0.1])

    def test_clip_leaves_nonfinite_untouched(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([np.nan, 1.0])
        _, clipped = clip_grad_norm([p], max_norm=1.0)
        assert not clipped

    def test_grads_are_finite(self):
        p = Parameter(np.zeros(2))
        assert grads_are_finite([p])  # no grad at all
        p.grad = np.array([1.0, 2.0])
        assert grads_are_finite([p])
        p.grad[0] = np.inf
        assert not grads_are_finite([p])

    def test_monitor_nonfinite_streak_escalates(self):
        monitor = DivergenceMonitor(patience=3)
        assert monitor.observe(1.0) == "ok"
        assert monitor.observe(float("nan")) == "skip"
        assert monitor.observe(1.0, finite_grads=False) == "skip"
        assert monitor.observe(float("inf")) == "rollback"

    def test_monitor_healthy_batch_resets_streak(self):
        monitor = DivergenceMonitor(patience=2)
        assert monitor.observe(float("nan")) == "skip"
        assert monitor.observe(1.0) == "ok"
        assert monitor.observe(float("nan")) == "skip"  # streak restarted

    def test_monitor_spike_detection_after_warmup(self):
        monitor = DivergenceMonitor(spike_factor=3.0, patience=2, warmup_batches=3)
        for _ in range(3):
            assert monitor.observe(1.0) == "ok"
        assert monitor.observe(10.0) == "skip"
        assert monitor.observe(10.0) == "rollback"

    def test_monitor_spike_disabled_by_default(self):
        monitor = DivergenceMonitor()
        for _ in range(20):
            assert monitor.observe(1.0) == "ok"
        assert monitor.observe(1e9) == "ok"


# -- the generational checkpoint store ----------------------------------------


class TestTrainingCheckpoint:
    def test_empty_store_is_fresh_start(self, tmp_path, split):
        store = TrainingCheckpoint(tmp_path / "ck")
        trainer = Trainer(flightnn_net(split), FL_CONFIG)
        assert store.restore_latest(trainer) is None
        assert store.generations() == []

    def test_save_restore_round_trip(self, tmp_path, split):
        store = TrainingCheckpoint(tmp_path / "ck")
        config = TrainConfig(epochs=2, batch_size=32, lr=3e-3, seed=3)
        trainer = Trainer(flightnn_net(split), config)
        trainer.fit(split, checkpoint=store)
        assert store.generations() == [1, 2]
        fresh = Trainer(flightnn_net(split, rng=9), config)
        assert store.restore_latest(fresh) == 2
        assert fresh._epoch == 2
        assert len(fresh.history.epochs) == 2
        assert_states_equal(trainer, fresh)

    def test_retention_keeps_last_n_plus_best(self, tmp_path, split):
        store = TrainingCheckpoint(tmp_path / "ck", keep_last=2)
        trainer = Trainer(flightnn_net(split), FL_CONFIG)

        def fake_epoch(epoch, accuracy):
            trainer.history.append(EpochStats(
                epoch=epoch, train_loss=1.0, train_accuracy=0.5,
                test_accuracy=accuracy, test_top5=1.0, mean_filter_k=1.0,
                storage_mb=0.1, learning_rate=3e-3,
            ))
            trainer._epoch = epoch + 1
            store.save(trainer)

        fake_epoch(0, 0.9)   # gen 1, best
        fake_epoch(1, 0.5)   # gen 2
        fake_epoch(2, 0.6)   # gen 3
        assert store.generations() == [1, 2, 3]  # best=1 survives keep_last=2
        fake_epoch(3, 0.4)   # gen 4 -> gen 2 pruned
        assert store.generations() == [1, 3, 4]
        assert store.best_generation() == 1
        assert store.latest_generation() == 4

    def test_failed_write_leaves_store_intact(self, tmp_path, split):
        fault = FailingWriteFault(fire_on_save=2)
        store = TrainingCheckpoint(tmp_path / "ck", write_hook=fault)
        trainer = Trainer(flightnn_net(split), FL_CONFIG)
        trainer.history.append(EpochStats(0, 1.0, 0.5, 0.5, 1.0, 1.0, 0.1, 3e-3))
        trainer._epoch = 1
        store.save(trainer)
        with pytest.raises(OSError):
            store.save(trainer)
        assert fault.fired == 1
        assert store.generations() == [1]
        assert not list((tmp_path / "ck").glob("*.tmp.*"))  # no debris
        fresh = Trainer(flightnn_net(split, rng=5), FL_CONFIG)
        assert store.restore_latest(fresh) == 1

    def test_scheme_mismatch_rejected(self, tmp_path, split):
        store = TrainingCheckpoint(tmp_path / "ck")
        config = TrainConfig(epochs=1, batch_size=32, seed=3)
        trainer = Trainer(flightnn_net(split), config)
        trainer.fit(split, checkpoint=store)
        other = build_network(1, SCHEMES["L-1"], num_classes=split.num_classes,
                              image_size=split.image_shape[1], width_scale=0.2, rng=0)
        with pytest.raises(CheckpointError):
            store.restore(Trainer(other, config), 1)

    def test_all_generations_corrupt_raises(self, tmp_path, split):
        store = TrainingCheckpoint(tmp_path / "ck")
        config = TrainConfig(epochs=1, batch_size=32, seed=3)
        trainer = Trainer(flightnn_net(split), config)
        trainer.fit(split, checkpoint=store)
        for payload in (tmp_path / "ck").glob("ckpt-*.npz"):
            payload.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            store.restore_latest(Trainer(flightnn_net(split), config))


# -- exact resume -------------------------------------------------------------


class TestExactResume:
    def test_crash_resume_is_bitwise_identical(self, tmp_path, split):
        """Train 4 epochs straight vs crash after 2 + resume: identical runs.

        FLightNN scheme, so the threshold SGD, lambda warmup position and
        the cosine schedule all have to survive the round trip, alongside
        weights, Adam moments and the shuffle RNG.
        """
        straight = Trainer(flightnn_net(split), FL_CONFIG)
        straight_history = straight.fit(split)

        store = TrainingCheckpoint(tmp_path / "ck", keep_last=10)
        crashed = Trainer(flightnn_net(split), FL_CONFIG)
        crashed.grad_hooks.append(crash_at_step(2 * BATCHES_PER_EPOCH))
        with pytest.raises(_Crash):
            crashed.fit(split, checkpoint=store)
        assert store.generations() == [1, 2]

        resumed = Trainer(flightnn_net(split, rng=8), FL_CONFIG)  # different init
        resumed_history = resumed.fit(split, checkpoint=store, resume=True)
        assert resumed._epoch == FL_CONFIG.epochs
        assert_states_equal(straight, resumed)
        assert straight_history.epochs == resumed_history.epochs  # incl. tail

    def test_resume_false_ignores_existing_store(self, tmp_path, split):
        config = TrainConfig(epochs=1, batch_size=32, seed=3)
        store = TrainingCheckpoint(tmp_path / "ck")
        Trainer(flightnn_net(split), config).fit(split, checkpoint=store)
        fresh = Trainer(flightnn_net(split), config)
        fresh.fit(split, checkpoint=store, resume=False)
        assert len(fresh.history.epochs) == 1
        assert store.latest_generation() == 2  # appended, not resumed

    def test_completed_run_resumes_to_noop(self, tmp_path, split):
        config = TrainConfig(epochs=2, batch_size=32, seed=3)
        store = TrainingCheckpoint(tmp_path / "ck")
        first = Trainer(flightnn_net(split), config)
        first.fit(split, checkpoint=store)
        again = Trainer(flightnn_net(split, rng=4), config)
        history = again.fit(split, checkpoint=store, resume=True)
        assert len(history.epochs) == 2
        assert_states_equal(first, again)

    def test_torn_write_falls_back_and_resumes_bitwise(self, tmp_path, split):
        """The acceptance scenario: SIGKILL-style torn write on the newest
        generation; the loader detects the checksum mismatch, falls back one
        generation, and the resumed run matches an uninterrupted one."""
        straight = Trainer(flightnn_net(split), FL_CONFIG)
        straight_history = straight.fit(split)

        fault = TornWriteFault(fire_on_save=3, keep_fraction=0.5)
        store = TrainingCheckpoint(tmp_path / "ck", keep_last=10, write_hook=fault)
        crashed = Trainer(flightnn_net(split), FL_CONFIG)
        crashed.grad_hooks.append(crash_at_step(3 * BATCHES_PER_EPOCH))
        with pytest.raises(_Crash):
            crashed.fit(split, checkpoint=store)
        assert fault.fired == 1
        assert store.generations() == [1, 2, 3]  # gen 3 is torn on disk

        clean_store = TrainingCheckpoint(tmp_path / "ck", keep_last=10)
        with pytest.raises(CheckpointError):  # newest generation is detected bad
            clean_store.restore(Trainer(flightnn_net(split), FL_CONFIG), 3)

        resumed = Trainer(flightnn_net(split), FL_CONFIG)
        resumed_history = resumed.fit(split, checkpoint=clean_store, resume=True)
        assert_states_equal(straight, resumed)
        assert straight_history.epochs == resumed_history.epochs


# -- guardrails in the training loop ------------------------------------------


class TestGuardrails:
    def test_single_nan_batch_is_skipped_and_counted(self, split):
        config = TrainConfig(epochs=2, batch_size=32, lr=3e-3, seed=3,
                             guard_patience=5)
        trainer = Trainer(flightnn_net(split), config)
        fault = NaNGradientFault(trainer.model.conv_layers()[0].weight, fire_at_step=2)
        trainer.grad_hooks.append(fault)
        history = trainer.fit(split)
        assert fault.fired == 1
        assert history.epochs[0].nonfinite_batches == 1
        assert history.epochs[1].nonfinite_batches == 0
        assert history.rollbacks == 0
        assert all(math.isfinite(e.train_loss) for e in history.epochs)
        for p in trainer.model.parameters():
            assert np.isfinite(p.data).all()

    def test_nan_streak_rolls_back_with_reduced_lr(self, tmp_path, split):
        """The acceptance scenario: injected NaN gradients trigger rollback +
        LR reduction, training completes with finite loss, and the event is
        visible in TrainHistory."""
        config = TrainConfig(epochs=3, batch_size=32, lr=3e-3, seed=3,
                             guard_patience=2, rollback_lr_factor=0.5)
        store = TrainingCheckpoint(tmp_path / "ck")
        trainer = Trainer(flightnn_net(split), config)
        fault = NaNGradientFault(
            trainer.model.conv_layers()[0].weight,
            fire_at_step=BATCHES_PER_EPOCH + 2, fires=2,
        )
        trainer.grad_hooks.append(fault)
        history = trainer.fit(split, checkpoint=store)
        assert fault.fired == 2
        assert len(history.epochs) == config.epochs
        assert all(math.isfinite(e.train_loss) for e in history.epochs)
        assert history.rollbacks == 1
        [event] = [e for e in history.events if e["type"] == "rollback"]
        assert event["restored_generation"] == 1
        assert event["epoch"] == 1
        assert trainer.optimizer.lr == pytest.approx(config.lr * 0.5)
        assert trainer.threshold_optimizer.lr == pytest.approx(
            config.lr * config.threshold_lr_scale * 0.5
        )
        assert history.as_dict()["events"] == history.events  # surfaced in the record

    def test_rollback_without_checkpoint_still_recovers(self, split):
        config = TrainConfig(epochs=2, batch_size=32, lr=3e-3, seed=3,
                             guard_patience=2, rollback_lr_factor=0.5)
        trainer = Trainer(flightnn_net(split), config)
        fault = NaNGradientFault(trainer.model.conv_layers()[0].weight,
                                 fire_at_step=1, fires=2)
        trainer.grad_hooks.append(fault)
        history = trainer.fit(split)
        assert history.rollbacks == 1
        assert history.events[0]["restored_generation"] is None
        assert trainer.optimizer.lr == pytest.approx(config.lr * 0.5)
        assert all(math.isfinite(e.train_loss) for e in history.epochs)

    def test_persistent_divergence_raises_typed_error(self, split):
        config = TrainConfig(epochs=2, batch_size=32, lr=3e-3, seed=3,
                             guard_patience=2, max_rollbacks=1)
        trainer = Trainer(flightnn_net(split), config)
        # Unbounded budget: the fault never disarms, so the rollback replays
        # straight into it again and the budget must trip.
        fault = NaNGradientFault(trainer.model.conv_layers()[0].weight,
                                 fire_at_step=0, fires=10_000)
        trainer.grad_hooks.append(fault)
        with pytest.raises(TrainingDivergedError):
            trainer.fit(split)

    def test_grad_clipping_counted_and_training_works(self, split):
        config = TrainConfig(epochs=2, batch_size=32, lr=3e-3, seed=3,
                             grad_clip_norm=1e-3)
        trainer = Trainer(flightnn_net(split), config)
        history = trainer.fit(split)
        assert sum(e.clipped_batches for e in history.epochs) > 0
        assert all(math.isfinite(e.train_loss) for e in history.epochs)

    def test_guardrails_do_not_perturb_healthy_training(self, split):
        """Default guards on vs fully off: identical results on a clean run."""
        guarded = Trainer(flightnn_net(split), TrainConfig(epochs=2, batch_size=32, seed=3))
        unguarded_config = TrainConfig(epochs=2, batch_size=32, seed=3,
                                       guard_nonfinite=False)
        unguarded = Trainer(flightnn_net(split), unguarded_config)
        h1 = guarded.fit(split)
        h2 = unguarded.fit(split)
        assert h1.epochs == h2.epochs
        assert_states_equal(guarded, unguarded)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TrainConfig(grad_clip_norm=0.0)
        with pytest.raises(ConfigurationError):
            TrainConfig(guard_patience=0)
        with pytest.raises(ConfigurationError):
            TrainConfig(rollback_lr_factor=0.0)
        with pytest.raises(ConfigurationError):
            TrainConfig(max_rollbacks=-1)
        with pytest.raises(ConfigurationError):
            TrainConfig(guard_spike_factor=-1.0)
