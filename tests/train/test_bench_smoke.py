"""Smoke run of the training benchmark (marker: train_bench).

Excluded from the default suite by ``pytest.ini``'s ``-m "not train_bench"``
so tier-1 stays quick; CI runs it on every push as the 10-step
bitwise-parity gate::

    PYTHONPATH=src:. python -m pytest tests/train/test_bench_smoke.py -m train_bench
"""

from __future__ import annotations

import json

import pytest

bench_train = pytest.importorskip(
    "benchmarks.bench_train", reason="benchmarks package requires repo root on sys.path"
)


@pytest.mark.train_bench
def test_benchmark_smoke(tmp_path):
    result = bench_train.run_benchmark(smoke=True, log=lambda *_: None)

    assert result["meta"]["smoke"] is True
    assert {row["network_id"] for row in result["timing"]} == {1, 4}
    for row in result["timing"]:
        assert row["eager"]["ms_per_step"] > 0
        assert row["fast"]["ms_per_step"] > 0
        for phase in ("data", "forward", "backward", "quantize", "optimizer"):
            assert phase in row["fast"]["phases_ms"], phase
    # The acceptance-criterion core, enforced even at smoke scale: a 10-step
    # fast-path run is bitwise identical to eager — weights, thresholds,
    # optimizer moments, TrainHistory, shuffle RNG.
    assert {row["network_id"] for row in result["parity"]} == {1, 4}
    for row in result["parity"]:
        assert row["steps"] == bench_train.PARITY_STEPS
        assert row["bitwise_identical"] is True
        assert all(row["matches"].values())

    out = tmp_path / "BENCH_train.json"
    out.write_text(json.dumps(result))  # round-trips: everything is plain JSON
    assert json.loads(out.read_text())["parity"]
