"""Tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError
from repro.models import build_network
from repro.nn.tensor import Tensor
from repro.quant.schemes import paper_schemes
from repro.train.checkpoint import checkpoint_metadata, load_checkpoint, save_checkpoint

SCHEMES = paper_schemes()


def make_net(scheme_key="FL_a", rng=0):
    return build_network(1, SCHEMES[scheme_key], num_classes=5, image_size=8,
                         width_scale=0.15, rng=rng)


class TestCheckpoint:
    def test_round_trip_restores_outputs(self, tmp_path, rng):
        a = make_net(rng=0)
        b = make_net(rng=7)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        a.eval(), b.eval()
        assert not np.allclose(a(x).numpy(), b(x).numpy())
        path = save_checkpoint(a, tmp_path / "model.npz")
        load_checkpoint(b, path)
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_metadata_round_trip(self, tmp_path):
        net = make_net()
        meta = {"scheme": "FL_a", "epoch": 7, "accuracy": 0.91}
        path = save_checkpoint(net, tmp_path / "m.npz", metadata=meta)
        assert load_checkpoint(make_net(rng=3), path) == meta
        assert checkpoint_metadata(path) == meta

    def test_no_metadata(self, tmp_path):
        net = make_net()
        path = save_checkpoint(net, tmp_path / "m.npz")
        assert checkpoint_metadata(path) == {}

    def test_thresholds_restored(self, tmp_path):
        a = make_net()
        layer = a.conv_layers()[0]
        layer.thresholds.data[:] = [0.12, 0.34]
        path = save_checkpoint(a, tmp_path / "m.npz")
        b = make_net(rng=9)
        load_checkpoint(b, path)
        np.testing.assert_allclose(b.conv_layers()[0].thresholds.data, [0.12, 0.34])

    def test_running_stats_restored(self, tmp_path, rng):
        a = make_net()
        a.train()
        a(Tensor(rng.normal(size=(4, 3, 8, 8))))  # update BN running stats
        path = save_checkpoint(a, tmp_path / "m.npz")
        b = make_net(rng=9)
        load_checkpoint(b, path)
        key = next(k for k in a.state_dict() if k.endswith("running_mean"))
        np.testing.assert_allclose(b.state_dict()[key], a.state_dict()[key])

    def test_shape_mismatch_raises(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "m.npz")
        wrong = build_network(1, SCHEMES["FL_a"], num_classes=5, image_size=8,
                              width_scale=0.3, rng=0)
        with pytest.raises(ConfigurationError):
            load_checkpoint(wrong, path)

    def test_creates_directories(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "deep" / "dir" / "m.npz")
        assert path.exists()


class TestCheckpointRobustness:
    def test_non_npz_suffix_normalized_once(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "model.ckpt")
        assert path == tmp_path / "model.ckpt.npz"
        assert path.exists()
        # Saving to the returned path must not grow another suffix.
        assert save_checkpoint(make_net(), path) == path
        assert sorted(p.name for p in tmp_path.iterdir()) == ["model.ckpt.npz"]

    def test_suffixless_path_normalized(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "model")
        assert path == tmp_path / "model.npz"
        load_checkpoint(make_net(rng=3), path)

    def test_save_leaves_no_temp_files(self, tmp_path):
        save_checkpoint(make_net(), tmp_path / "m.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["m.npz"]

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        path = save_checkpoint(make_net(), tmp_path / "m.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        with pytest.raises(CheckpointError):
            load_checkpoint(make_net(rng=3), path)
        with pytest.raises(CheckpointError):
            checkpoint_metadata(path)

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "m.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError):
            load_checkpoint(make_net(), path)
        with pytest.raises(CheckpointError):
            checkpoint_metadata(path)

    def test_missing_file_raises_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(make_net(), tmp_path / "absent.npz")
        with pytest.raises(CheckpointError):
            checkpoint_metadata(tmp_path / "absent.npz")
