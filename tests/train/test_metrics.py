"""Tests for classification metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.train.metrics import RunningAverage, accuracy, topk_accuracy


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_zero(self):
        logits = np.eye(2) * 10
        assert accuracy(logits, np.array([1, 0])) == 0.0

    def test_partial(self):
        logits = np.array([[2.0, 1.0], [2.0, 1.0]])
        assert accuracy(logits, np.array([0, 1])) == 0.5


class TestTopK:
    def test_top5_counts_near_misses(self):
        logits = np.zeros((1, 10))
        logits[0, :5] = [5, 4, 3, 2, 1]
        assert topk_accuracy(logits, np.array([4]), k=5) == 1.0
        assert topk_accuracy(logits, np.array([9]), k=5) == 0.0

    def test_topk_monotone_in_k(self, rng):
        logits = rng.normal(size=(50, 10))
        labels = rng.integers(0, 10, 50)
        accs = [topk_accuracy(logits, labels, k) for k in range(1, 11)]
        assert all(a <= b + 1e-12 for a, b in zip(accs, accs[1:]))
        assert accs[-1] == 1.0  # top-10 of 10 classes is always a hit

    def test_invalid_k(self, rng):
        with pytest.raises(ShapeError):
            topk_accuracy(rng.normal(size=(3, 4)), np.zeros(3, dtype=int), k=5)

    def test_shape_validation(self, rng):
        with pytest.raises(ShapeError):
            topk_accuracy(rng.normal(size=(3,)), np.zeros(3, dtype=int), k=1)
        with pytest.raises(ShapeError):
            topk_accuracy(rng.normal(size=(3, 4)), np.zeros(5, dtype=int), k=1)


class TestRunningAverage:
    def test_weighted_mean(self):
        avg = RunningAverage()
        avg.update(1.0, weight=3)
        avg.update(5.0, weight=1)
        assert avg.value == pytest.approx(2.0)
        assert avg.count == 4

    def test_empty_is_zero(self):
        assert RunningAverage().value == 0.0
