"""End-to-end tests of the training fast path (ISSUE 4 tentpole).

The defining contract: ``fast_path=True`` (quantizer workspace + buffer
arena + prefetching loader) must produce a training trajectory **bitwise
identical** to the eager baseline — weights, thresholds, optimizer
moments, TrainHistory — while actually serving cached/reused state.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataSplit
from repro.errors import ParityError
from repro.models.registry import build_network
from repro.quant.schemes import paper_schemes
from repro.train.checkpoint import TrainingCheckpoint
from repro.train.cli import build_parser, main
from repro.train.trainer import TrainConfig, Trainer

BATCH, IMAGE, STEPS_PER_EPOCH = 8, 16, 5


def bits(a: np.ndarray) -> bytes:
    return np.ascontiguousarray(a).view(np.uint8).tobytes()


def _split(seed=1):
    rng = np.random.default_rng(seed)
    n = BATCH * STEPS_PER_EPOCH

    def dataset(k, s):
        r = np.random.default_rng(s)
        return ArrayDataset(
            r.standard_normal((k, 3, IMAGE, IMAGE)), r.integers(0, 10, k), 10
        )

    return DataSplit(train=dataset(n, seed), test=dataset(2 * BATCH, seed + 100))


def _trainer(fast: bool, network_id: int = 4, **overrides) -> Trainer:
    model = build_network(
        network_id,
        paper_schemes()["FL_a"],
        num_classes=10,
        image_size=IMAGE,
        width_scale=1.0,
        rng=0,
    )
    options = {"epochs": 2, "batch_size": BATCH, "fast_path": fast, "seed": 0}
    options.update(overrides)
    config = TrainConfig(**options)
    return Trainer(model, config)


class TestBitwiseTrajectory:
    def test_ten_step_run_identical_to_eager(self):
        """The acceptance criterion: 10 steps, every array bit for bit."""
        split = _split()
        eager, fast = _trainer(False), _trainer(True)
        history_e = eager.fit(split)
        history_f = fast.fit(split)

        arrays_e, meta_e = eager.training_state()
        arrays_f, meta_f = fast.training_state()
        assert arrays_e.keys() == arrays_f.keys()
        for name in arrays_e:
            assert bits(arrays_e[name]) == bits(arrays_f[name]), name
        assert meta_e["history"] == meta_f["history"]
        assert meta_e["rng"] == meta_f["rng"]
        assert json.dumps(history_e.as_dict()) == json.dumps(history_f.as_dict())
        assert eager._step == fast._step == 2 * STEPS_PER_EPOCH

    def test_fast_path_really_engaged(self):
        """Parity must not be vacuous: caches were hit, buffers reused."""
        fast = _trainer(True)
        fast.fit(_split())
        assert fast._arena is not None
        assert fast._arena.reuses > 0
        workspaces = [
            layer.quant_workspace
            for layer in fast._flightnn_layers
            if layer.quant_workspace is not None
        ]
        assert workspaces
        assert all(ws.hits > 0 for ws in workspaces)

    def test_eager_path_has_no_arena_or_workspaces(self):
        eager = _trainer(False)
        assert eager._arena is None
        assert all(
            layer.quant_workspace is None for layer in eager._flightnn_layers
        )


class TestRollbackInvalidation:
    def test_divergence_rollback_invalidates_quantizer_workspaces(self, tmp_path):
        """Regression (ISSUE 4): a DivergenceMonitor rollback restores old
        weights; serving the pre-rollback decomposition afterwards would
        silently corrupt every threshold gradient."""
        trainer = _trainer(True, epochs=1)
        checkpoint = TrainingCheckpoint(tmp_path / "store")
        trainer.fit(_split(), checkpoint=checkpoint, resume=False)

        layers = [
            layer
            for layer in trainer._flightnn_layers
            if layer.quant_workspace is not None
        ]
        assert layers
        # Re-warm every cache, then drift the weights as a divergence would.
        for layer in layers:
            layer.quant_workspace.state(layer.weight, layer.thresholds)
            assert layer.quant_workspace._state is not None
            layer.weight.data += 0.5
            layer.weight.bump_version()

        trainer._handle_divergence(checkpoint)

        for layer in layers:
            assert layer.quant_workspace._state is None  # cache dropped
            state = layer.quant_workspace.state(layer.weight, layer.thresholds)
            direct = layer.strategy.quantizer.quantize(
                layer.weight.data, layer.thresholds.data
            )
            assert bits(state.quantized) == bits(direct.quantized)

    def test_rollback_records_event(self, tmp_path):
        trainer = _trainer(True, epochs=1)
        checkpoint = TrainingCheckpoint(tmp_path / "store")
        trainer.fit(_split(), checkpoint=checkpoint, resume=False)
        trainer._handle_divergence(checkpoint)
        assert any(e["type"] == "rollback" for e in trainer.history.events)


class TestEngineEvalParity:
    def test_validation_goes_through_engine_and_is_checked_once(self):
        trainer = _trainer(True, epochs=1)
        assert not trainer._parity_checked
        trainer.fit(_split())
        assert trainer._parity_checked
        assert trainer._eval_engine is not None  # validation used the engine

    def test_skewed_engine_metrics_raise_parity_error(self):
        trainer = _trainer(True, epochs=1)
        split = _split()
        honest = trainer.evaluate(split.test)
        skewed = dict(honest, accuracy=honest["accuracy"] + 0.25)
        with pytest.raises(ParityError, match="accuracy"):
            trainer._check_eval_parity(skewed, split.test)

    def test_parity_check_runs_only_once(self):
        trainer = _trainer(True, epochs=1)
        split = _split()
        honest = trainer.evaluate(split.test)
        trainer._check_eval_parity(honest, split.test)
        # Second call is a no-op even with garbage metrics.
        trainer._check_eval_parity({"loss": 99.0, "accuracy": 0.0, "top5": 0.0}, split.test)


class TestCliFlag:
    def test_fast_train_flag_parses(self):
        assert build_parser().parse_args([]).fast_train is False
        assert build_parser().parse_args(["--fast-train"]).fast_train is True

    def test_fast_train_tiny_run(self, capsys):
        code = main(
            [
                "--network", "4",
                "--scheme", "FL_a",
                "--epochs", "1",
                "--batch-size", "8",
                "--width-scale", "0.25",
                "--size-scale", "0.3",
                "--samples", "48",
                "--fast-train",
            ]
        )
        assert code == 0
        assert "epoch" in capsys.readouterr().out.lower()
