"""Tests for the Dropout layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.layers import Dropout
from repro.nn.tensor import Tensor


class TestDropout:
    def test_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            Dropout(p=1.0)
        with pytest.raises(ConfigurationError):
            Dropout(p=-0.1)

    def test_eval_is_identity(self, rng):
        layer = Dropout(p=0.5, rng=0)
        layer.eval()
        x = Tensor(rng.normal(size=(3, 4)))
        assert layer(x) is x

    def test_p_zero_is_identity(self, rng):
        layer = Dropout(p=0.0)
        x = Tensor(rng.normal(size=(3, 4)))
        assert layer(x) is x

    def test_training_zeroes_roughly_p_fraction(self, rng):
        layer = Dropout(p=0.3, rng=0)
        x = Tensor(np.ones((100, 100)))
        out = layer(x).numpy()
        frac_zero = (out == 0).mean()
        assert 0.25 < frac_zero < 0.35

    def test_survivors_scaled(self):
        layer = Dropout(p=0.5, rng=0)
        out = layer(Tensor(np.ones((50, 50)))).numpy()
        survivors = out[out != 0]
        np.testing.assert_allclose(survivors, 2.0)

    def test_expected_value_preserved(self, rng):
        layer = Dropout(p=0.4, rng=0)
        x = Tensor(np.ones((200, 200)))
        assert layer(x).numpy().mean() == pytest.approx(1.0, abs=0.05)

    def test_gradient_masked_like_forward(self, rng):
        layer = Dropout(p=0.5, rng=0)
        x = Tensor(rng.normal(size=(10, 10)), requires_grad=True)
        out = layer(x)
        out.backward(np.ones((10, 10)))
        mask = out.numpy() != 0
        assert ((x.grad != 0) == mask).all()

    def test_repr(self):
        assert "0.5" in repr(Dropout(0.5))
