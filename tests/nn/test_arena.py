"""Tests for the training fast path's buffer arena (repro.nn.arena).

Two families:

* unit tests of :class:`BufferArena` slot/constant bookkeeping, and
* bitwise eager-vs-arena parity of every op with an arena branch
  (conv2d with padding/stride, pooling, leaky ReLU, fused batch-norm),
  checked cold (first pass allocates) *and* warm (buffers reused), which
  is what licenses the fast path's claim of identical training curves.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.arena import BufferArena, active_arena, use_arena
from repro.nn.gradcheck import check_gradients
from repro.nn.layers.norm import BatchNorm2d
from repro.nn.tensor import Tensor


def bits(a: np.ndarray) -> bytes:
    """Exact bit pattern of an array (parity means *these* are equal)."""
    return np.ascontiguousarray(a).view(np.uint8).tobytes()


class TestBufferArena:
    def test_slots_keyed_by_request_order(self):
        arena = BufferArena()
        arena.begin_pass()
        first = arena.take((4, 4))
        second = arena.take((4, 4))
        assert first is not second
        arena.begin_pass()
        assert arena.take((4, 4)) is first
        assert arena.take((4, 4)) is second
        assert arena.allocations == 2
        assert arena.reuses == 2

    def test_shape_change_reallocates_slot(self):
        arena = BufferArena()
        arena.begin_pass()
        full = arena.take((8, 2))
        arena.begin_pass()
        tail = arena.take((3, 2))  # smaller final batch
        assert tail.shape == (3, 2)
        arena.begin_pass()
        assert arena.take((8, 2)) is full  # both geometries stay warm

    def test_zero_modes(self):
        arena = BufferArena()
        arena.begin_pass()
        acc = arena.take((3,), zero="always")
        assert (acc == 0.0).all()
        acc += 7.0
        pad = arena.take((3,), zero="alloc")
        assert (pad == 0.0).all()
        pad += 5.0
        arena.begin_pass()
        assert (arena.take((3,), zero="always") == 0.0).all()
        # "alloc" zeroes only on allocation: the written values survive.
        assert (arena.take((3,), zero="alloc") == 5.0).all()

    def test_cached_constants_built_once(self):
        arena = BufferArena()
        calls = []
        grid = arena.cached(("grid", (2, 2)), lambda: calls.append(1) or np.ones((2, 2)))
        again = arena.cached(("grid", (2, 2)), lambda: calls.append(1) or np.ones((2, 2)))
        assert grid is again
        assert len(calls) == 1
        arena.begin_pass()  # constants are not slots: survive pass recycling
        assert arena.cached(("grid", (2, 2)), lambda: None) is grid

    def test_use_arena_installs_and_restores(self):
        arena = BufferArena()
        assert active_arena() is None
        with use_arena(arena) as installed:
            assert installed is arena
            assert active_arena() is arena
        assert active_arena() is None
        with use_arena(None) as installed:  # passthrough no-op
            assert installed is None
            assert active_arena() is None

    def test_use_arena_resets_cursor(self):
        arena = BufferArena()
        with use_arena(arena):
            first = arena.take((2,))
        with use_arena(arena):
            assert arena.take((2,)) is first


class TestAccumulateGradOwnership:
    def test_own_true_adopts_array_without_copy(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        g = np.ones(3)
        x.accumulate_grad(g, own=True)
        assert x.grad is g

    def test_own_false_defensively_copies(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        g = np.ones(3)
        x.accumulate_grad(g)
        assert x.grad is not g
        np.testing.assert_array_equal(x.grad, g)

    def test_second_accumulation_adds_in_both_modes(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x.accumulate_grad(np.ones(3), own=True)
        x.accumulate_grad(np.full(3, 2.0), own=True)
        np.testing.assert_array_equal(x.grad, np.full(3, 3.0))


def _run_conv_stack(arena, x_np, w_np, b_np, stride, padding):
    """One forward+backward of conv -> leaky -> maxpool -> batchnorm-ish."""
    x = Tensor(x_np.copy(), requires_grad=True)
    w = Tensor(w_np.copy(), requires_grad=True)
    b = Tensor(b_np.copy(), requires_grad=True)
    ctx = use_arena(arena) if arena is not None else nullcontext()
    with ctx:
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        out = F.leaky_relu(out, 0.1)
        if out.shape[2] >= 2 and out.shape[3] >= 2:
            out = F.max_pool2d(out, kernel=2)
        loss = (out * out).sum()
        loss.backward()
    return out.data.copy(), x.grad.copy(), w.grad.copy(), b.grad.copy()


class TestBitwiseParity:
    @pytest.mark.parametrize(
        "shape,filters,kernel,stride,padding",
        [
            ((4, 3, 12, 12), 6, 3, 1, 1),  # p >= 64: batched-GEMM dw branch
            ((3, 4, 9, 9), 5, 3, 2, 0),    # p < 64: einsum dw branch
            ((2, 3, 8, 8), 4, 1, 1, 0),    # 1x1 kernel col2im shortcut
            ((3, 2, 7, 7), 4, 3, 2, 1),    # stride + padding together
        ],
    )
    def test_conv_stack_parity_cold_and_warm(self, rng, shape, filters, kernel, stride, padding):
        x_np = rng.normal(size=shape)
        x_np[rng.random(shape) < 0.1] = 0.0  # exercise signed-zero handling
        w_np = rng.normal(scale=0.4, size=(filters, shape[1], kernel, kernel))
        b_np = rng.normal(scale=0.1, size=filters)
        eager = _run_conv_stack(None, x_np, w_np, b_np, stride, padding)
        arena = BufferArena()
        cold = _run_conv_stack(arena, x_np, w_np, b_np, stride, padding)
        warm = _run_conv_stack(arena, x_np, w_np, b_np, stride, padding)
        assert arena.reuses > 0  # warm pass really served recycled buffers
        for e, c, w_ in zip(eager, cold, warm):
            assert bits(e) == bits(c) == bits(w_)

    @pytest.mark.parametrize("kernel,stride,size", [(2, 2, 8), (3, 3, 9), (2, 3, 8), (8, 8, 8)])
    def test_avg_pool_parity(self, rng, kernel, stride, size):
        shape = (3, 4, size, size)
        x_np = rng.normal(size=shape)

        def run(arena):
            x = Tensor(x_np.copy(), requires_grad=True)
            ctx = use_arena(arena) if arena is not None else nullcontext()
            with ctx:
                out = F.avg_pool2d(x, kernel=kernel, stride=stride)
                ((out * out).sum()).backward()
            return out.data.copy(), x.grad.copy()

        eager = run(None)
        arena = BufferArena()
        cold, warm = run(arena), run(arena)
        for e, c, w_ in zip(eager, cold, warm):
            assert bits(e) == bits(c) == bits(w_)

    @pytest.mark.parametrize(
        "shape",
        [(4, 8, 6, 6), (1, 4, 5, 5), (6, 4, 1, 1), (3, 2, 1, 7), (2, 3, 8, 8)],
    )
    def test_batchnorm_fused_parity(self, rng, shape):
        """Fused BN training forward/backward == eager graph, bit for bit.

        Includes the degenerate single-value-per-channel shapes whose eager
        backward skips size-1 reductions (the -0.0 normalisation trap).
        """
        channels = shape[1]
        x_np = rng.normal(size=shape)
        x_np[rng.random(shape) < 0.15] = 0.0
        g_np = rng.normal(size=shape)
        g_np[rng.random(shape) < 0.1] = -0.0

        def run(arena):
            bn = BatchNorm2d(channels)
            bn.train()
            bn.gamma.data[...] = np.linspace(0.5, 1.5, channels)
            bn.beta.data[...] = np.linspace(-0.2, 0.2, channels)
            x = Tensor(x_np.copy(), requires_grad=True)
            ctx = use_arena(arena) if arena is not None else nullcontext()
            with ctx:
                out = bn(x)
                ((out * Tensor(g_np)).sum()).backward()
            return (
                out.data.copy(), x.grad.copy(), bn.gamma.grad.copy(),
                bn.beta.grad.copy(), bn.running_mean.copy(), bn.running_var.copy(),
            )

        eager = run(None)
        arena = BufferArena()
        cold, warm = run(arena), run(arena)
        for e, c, w_ in zip(eager, cold, warm):
            assert bits(e) == bits(c) == bits(w_)

    def test_leaky_relu_inexact_slope_falls_back(self, rng):
        """A slope where (1-s)+s != 1 must still match eager exactly."""
        x_np = rng.normal(size=(5, 5))
        slope = 0.1000000000000000055511151231257827  # == 0.1; exactness holds
        for s in (slope, 0.3, 1e-300):
            x_e = Tensor(x_np.copy(), requires_grad=True)
            (F.leaky_relu(x_e, s) * 2.0).sum().backward()
            arena = BufferArena()
            x_a = Tensor(x_np.copy(), requires_grad=True)
            with use_arena(arena):
                (F.leaky_relu(x_a, s) * 2.0).sum().backward()
            assert bits(x_e.grad) == bits(x_a.grad)


class TestGradcheckUnderArena:
    def test_conv_backward_with_reused_buffers(self, rng):
        """Numerical gradcheck of conv2d while the arena serves warm buffers."""
        arena = BufferArena()
        x = Tensor(rng.normal(size=(2, 3, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(scale=0.4, size=(4, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(scale=0.1, size=4), requires_grad=True)

        def loss():
            with use_arena(arena):
                out = F.conv2d(x, w, b, stride=1, padding=1)
                return (out * out).sum()

        loss()  # warm the slots so the checked pass runs on reused buffers
        check_gradients(loss, [x, w, b])
        assert arena.reuses > 0

    def test_fused_batchnorm_gradcheck(self, rng):
        arena = BufferArena()
        bn = BatchNorm2d(3)
        bn.train()
        x = Tensor(rng.normal(size=(4, 3, 5, 5)), requires_grad=True)

        def loss():
            with use_arena(arena):
                out = bn(x)
                return (out * out).sum()

        loss()
        check_gradients(loss, [x, bn.gamma, bn.beta], rtol=1e-3, atol=1e-5)
