"""Unit and property tests for the autograd Tensor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GradientError, ShapeError
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad


def make(shape, rng, requires_grad=True):
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert not t.requires_grad

    def test_int_data_promoted_to_float(self):
        t = Tensor(np.array([1, 2, 3]))
        assert t.dtype.kind == "f"

    def test_non_numeric_rejected(self):
        with pytest.raises(ShapeError):
            Tensor(np.array(["a", "b"]))

    def test_item_and_numpy(self):
        t = Tensor(np.array(3.5))
        assert t.item() == 3.5
        assert t.numpy() is t.data

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(Tensor(np.zeros(2)))

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_len(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(GradientError):
            Tensor(np.zeros(2)).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        y = x * 2
        with pytest.raises(GradientError):
            y.backward()
        y.backward(np.ones(3))
        np.testing.assert_allclose(x.grad, 2 * np.ones(3))

    def test_backward_grad_shape_checked(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        with pytest.raises(ShapeError):
            (x * 1).backward(np.ones(4))

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3 + x * 4  # dy/dx = 7
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [7.0])

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward(np.ones(1))
        (x * 2).backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward(np.ones(1))
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph(self):
        # f = (x+x) * (x*2); df/dx = 8x
        x = Tensor(np.array([3.0]), requires_grad=True)
        f = ((x + x) * (x * 2)).sum()
        f.backward()
        np.testing.assert_allclose(x.grad, [24.0])

    def test_no_grad_context(self):
        x = Tensor(np.ones(2), requires_grad=True)
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_deep_chain_no_recursion_limit(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward(np.ones(1))
        np.testing.assert_allclose(x.grad, [1.0])


class TestArithmeticGradients:
    def test_add(self, rng):
        a, b = make((3, 4), rng), make((3, 4), rng)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = make((3, 4), rng), make((4,), rng)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub_and_rsub(self, rng):
        a = make((2, 3), rng)
        check_gradients(lambda: (5.0 - a).sum(), [a])
        check_gradients(lambda: (a - 2.0).sum(), [a])

    def test_mul_broadcast_scalar_tensor(self, rng):
        a, s = make((2, 3), rng), make((), rng)
        check_gradients(lambda: (a * s).sum(), [a, s])

    def test_div(self, rng):
        a = make((2, 3), rng)
        b = Tensor(rng.uniform(1.0, 2.0, size=(2, 3)), requires_grad=True)
        check_gradients(lambda: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        check_gradients(lambda: (a**3).sum(), [a])

    def test_pow_rejects_tensor_exponent(self, rng):
        a = make((2,), rng)
        with pytest.raises(ShapeError):
            a ** a  # noqa: B015

    def test_neg(self, rng):
        a = make((3,), rng)
        check_gradients(lambda: (-a).sum(), [a])

    def test_matmul(self, rng):
        a, b = make((3, 4), rng), make((4, 2), rng)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_rejects_non_2d(self, rng):
        with pytest.raises(ShapeError):
            make((2, 3, 4), rng) @ make((4, 2), rng)


class TestElementwiseGradients:
    def test_exp(self, rng):
        a = make((3,), rng)
        check_gradients(lambda: a.exp().sum(), [a])

    def test_log(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 3.0, size=(3,)), requires_grad=True)
        check_gradients(lambda: a.sqrt().sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.choice([-1.5, 2.5], size=(6,)) + rng.normal(scale=0.1, size=6), requires_grad=True)
        check_gradients(lambda: a.abs().sum(), [a])

    def test_sigmoid(self, rng):
        a = make((5,), rng)
        check_gradients(lambda: a.sigmoid().sum(), [a])

    def test_sigmoid_extreme_values_stable(self):
        a = Tensor(np.array([-1000.0, 1000.0]))
        out = a.sigmoid().numpy()
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    def test_tanh(self, rng):
        a = make((5,), rng)
        check_gradients(lambda: a.tanh().sum(), [a])

    def test_clip(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        check_gradients(lambda: a.clip(-1.0, 1.0).sum(), [a])
        out = a.clip(-1.0, 1.0).numpy()
        assert out.min() >= -1.0 and out.max() <= 1.0


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = make((2, 3, 4), rng)
        check_gradients(lambda: (a.sum(axis=1, keepdims=True) ** 2).sum(), [a])

    def test_sum_tuple_axis(self, rng):
        a = make((2, 3, 4), rng)
        check_gradients(lambda: (a.sum(axis=(0, 2)) ** 2).sum(), [a])

    def test_mean(self, rng):
        a = make((2, 3), rng)
        check_gradients(lambda: a.mean(), [a])
        np.testing.assert_allclose(a.mean().item(), a.data.mean())

    def test_mean_tuple_axis_matches_numpy(self, rng):
        a = make((2, 3, 4), rng)
        np.testing.assert_allclose(a.mean(axis=(0, 2)).numpy(), a.data.mean(axis=(0, 2)))

    def test_max_axis(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(float), requires_grad=True)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).backward(np.ones(1))
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_reshape(self, rng):
        a = make((2, 6), rng)
        check_gradients(lambda: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = make((2, 3, 4), rng)
        check_gradients(lambda: (a.transpose(2, 0, 1) ** 2).sum(), [a])
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_T(self, rng):
        a = make((2, 5), rng)
        assert a.T.shape == (5, 2)

    def test_getitem_slice(self, rng):
        a = make((4, 5), rng)
        check_gradients(lambda: (a[1:3, ::2] ** 2).sum(), [a])

    def test_getitem_repeated_index_accumulates(self):
        a = Tensor(np.arange(3.0), requires_grad=True)
        a[np.array([0, 0, 1])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 1.0, 0.0])


@settings(max_examples=30, deadline=None)
@given(
    shape=st.sampled_from([(2,), (3, 2), (2, 3, 2)]),
    seed=st.integers(0, 2**16),
)
def test_property_sum_matches_numpy(shape, seed):
    data = np.random.default_rng(seed).normal(size=shape)
    np.testing.assert_allclose(Tensor(data).sum().item(), data.sum())


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_mul_gradient_is_other_operand(seed):
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(4,)), requires_grad=True)
    b = Tensor(rng.normal(size=(4,)))
    (a * b).sum().backward()
    np.testing.assert_allclose(a.grad, b.data)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16), extra_dims=st.integers(0, 2))
def test_property_broadcast_grad_shape_matches_param(seed, extra_dims):
    rng = np.random.default_rng(seed)
    small = Tensor(rng.normal(size=(3,)), requires_grad=True)
    big_shape = (2,) * extra_dims + (4, 3)
    big = Tensor(rng.normal(size=big_shape))
    (small + big).sum().backward()
    assert small.grad.shape == small.shape
    np.testing.assert_allclose(small.grad, np.full(3, np.prod(big_shape[:-1], dtype=float)))
