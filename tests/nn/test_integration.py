"""End-to-end integration tests of the nn substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    LeakyReLU,
    Linear,
    MaxPool2d,
    Sequential,
)
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


def make_toy_problem(rng, n=32, classes=3, size=8):
    """A tiny separable problem: class = location of the bright quadrant."""
    images = rng.normal(scale=0.3, size=(n, 1, size, size))
    labels = rng.integers(0, classes, size=n)
    half = size // 2
    slices = [(slice(0, half), slice(0, half)),
              (slice(0, half), slice(half, None)),
              (slice(half, None), slice(0, half))]
    for i, label in enumerate(labels):
        sy, sx = slices[label]
        images[i, 0, sy, sx] += 2.0
    return images, labels


class TestEndToEndTraining:
    def test_small_cnn_overfits_toy_problem(self, rng):
        """The substrate must drive training loss near zero on a tiny task."""
        images, labels = make_toy_problem(rng)
        model = Sequential(
            Conv2d(1, 8, 3, padding=1, rng=0),
            BatchNorm2d(8),
            LeakyReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(8 * 4 * 4, 3, rng=0),
        )
        opt = Adam(model.parameters(), lr=1e-2)
        losses = []
        for _ in range(60):
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < 0.05
        model.eval()
        with no_grad():
            preds = model(Tensor(images)).numpy().argmax(axis=1)
        assert (preds == labels).mean() == 1.0

    def test_global_avg_pool_head_trains(self, rng):
        images, labels = make_toy_problem(rng, n=24)
        model = Sequential(
            Conv2d(1, 6, 3, padding=1, rng=1),
            BatchNorm2d(6),
            LeakyReLU(),
            GlobalAvgPool2d(),
            Linear(6, 3, rng=1),
        )
        opt = Adam(model.parameters(), lr=2e-2)
        first = last = None
        for step in range(50):
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            opt.step()
            if step == 0:
                first = loss.item()
            last = loss.item()
        assert last < first * 0.5

    def test_dropout_network_still_converges(self, rng):
        images, labels = make_toy_problem(rng, n=24)
        model = Sequential(
            Conv2d(1, 6, 3, padding=1, rng=2),
            LeakyReLU(),
            Flatten(),
            Dropout(0.2, rng=0),
            Linear(6 * 8 * 8, 3, rng=2),
        )
        opt = Adam(model.parameters(), lr=1e-2)
        for _ in range(60):
            model.zero_grad()
            loss = F.cross_entropy(model(Tensor(images)), labels)
            loss.backward()
            opt.step()
        model.eval()
        with no_grad():
            preds = model(Tensor(images)).numpy().argmax(axis=1)
        assert (preds == labels).mean() > 0.9


class TestTrainEvalConsistency:
    def test_batchnorm_eval_close_to_train_stats_after_convergence(self, rng):
        bn = BatchNorm2d(3, momentum=0.2)
        x = Tensor(rng.normal(loc=1.5, scale=2.0, size=(32, 3, 6, 6)))
        for _ in range(60):
            bn(x)
        train_out = bn(x).numpy()
        bn.eval()
        eval_out = bn(x).numpy()
        np.testing.assert_allclose(train_out, eval_out, atol=0.15)

    def test_eval_mode_is_deterministic_with_dropout(self, rng):
        model = Sequential(Dropout(0.5, rng=0), Linear(4, 2, rng=0))
        model.eval()
        x = Tensor(rng.normal(size=(3, 4)))
        with no_grad():
            np.testing.assert_array_equal(model(x).numpy(), model(x).numpy())


class TestGradientFlowThroughDeepStacks:
    def test_ten_layer_conv_stack_gradcheck_like(self, rng):
        """Gradient magnitude stays finite and non-zero through depth."""
        layers = []
        for _ in range(10):
            layers += [Conv2d(4, 4, 3, padding=1, rng=3), LeakyReLU()]
        model = Sequential(*layers)
        x = Tensor(rng.normal(size=(2, 4, 6, 6)), requires_grad=True)
        out = model(x)
        (out * out).sum().backward()
        assert np.isfinite(x.grad).all()
        assert np.abs(x.grad).max() > 0

    def test_gradient_accumulation_matches_larger_batch(self, rng):
        """Two half-batch backward passes equal one full-batch pass."""
        conv = Conv2d(1, 2, 3, rng=4)
        x = rng.normal(size=(4, 1, 5, 5))
        labels = np.array([0, 1, 0, 1])

        def head(images):
            return F.flatten(conv(Tensor(images)))

        w = Tensor(rng.normal(size=(2, 2 * 9)))
        conv.zero_grad()
        F.cross_entropy(F.linear(head(x), Tensor(w.data)), labels).backward()
        full_grad = conv.weight.grad.copy()

        conv.zero_grad()
        for half, lab in ((x[:2], labels[:2]), (x[2:], labels[2:])):
            loss = F.cross_entropy(F.linear(head(half), Tensor(w.data)), lab)
            (loss * 0.5).backward()
        np.testing.assert_allclose(conv.weight.grad, full_grad, rtol=1e-10)
