"""Tests for optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.optim import SGD, Adam, ConstantLR, CosineDecayLR, StepDecayLR
from repro.nn.tensor import Tensor


def quadratic_loss(param: Tensor, target: np.ndarray) -> Tensor:
    diff = param - Tensor(target)
    return (diff * diff).sum()


def run_steps(optimizer, param, target, steps):
    for _ in range(steps):
        optimizer.zero_grad()
        loss = quadratic_loss(param, target)
        loss.backward()
        optimizer.step()
    return quadratic_loss(param, target).item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(4), requires_grad=True)
        target = np.array([1.0, -2.0, 0.5, 3.0])
        final = run_steps(SGD([p], lr=0.1), p, target, 200)
        assert final < 1e-8

    def test_momentum_accelerates(self):
        target = np.array([2.0])
        p_plain = Tensor(np.zeros(1), requires_grad=True)
        p_mom = Tensor(np.zeros(1), requires_grad=True)
        plain = run_steps(SGD([p_plain], lr=0.01), p_plain, target, 50)
        mom = run_steps(SGD([p_mom], lr=0.01, momentum=0.9), p_mom, target, 50)
        assert mom < plain

    def test_weight_decay_shrinks_solution(self):
        target = np.array([1.0])
        p = Tensor(np.zeros(1), requires_grad=True)
        run_steps(SGD([p], lr=0.05, weight_decay=1.0), p, target, 500)
        # Ridge solution of (x-1)^2*... : minimiser below 1.
        assert 0.0 < p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Tensor(np.ones(2), requires_grad=True)
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad accumulated; must not crash or move params
        np.testing.assert_allclose(p.data, 1.0)

    def test_invalid_args(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ConfigurationError):
            SGD([p], lr=-1.0)
        with pytest.raises(ConfigurationError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ConfigurationError):
            SGD([p], lr=0.1, weight_decay=-0.1)
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)
        with pytest.raises(ConfigurationError):
            SGD([p, p], lr=0.1)
        with pytest.raises(ConfigurationError):
            SGD([Tensor(np.ones(1))], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Tensor(np.zeros(3), requires_grad=True)
        target = np.array([1.0, -1.0, 2.0])
        final = run_steps(Adam([p], lr=0.05), p, target, 500)
        assert final < 1e-6

    def test_scale_invariance_of_first_steps(self):
        # Adam's first step size is ~lr regardless of gradient magnitude.
        p1 = Tensor(np.zeros(1), requires_grad=True)
        p2 = Tensor(np.zeros(1), requires_grad=True)
        for p, scale in ((p1, 1.0), (p2, 1000.0)):
            opt = Adam([p], lr=0.1)
            loss = (p * scale).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(p1.data, p2.data, rtol=1e-3)

    def test_invalid_args(self):
        p = Tensor(np.ones(1), requires_grad=True)
        with pytest.raises(ConfigurationError):
            Adam([p], lr=0.1, betas=(1.0, 0.999))
        with pytest.raises(ConfigurationError):
            Adam([p], lr=0.1, eps=0.0)

    def test_weight_decay(self):
        p = Tensor(np.ones(1) * 5.0, requires_grad=True)
        opt = Adam([p], lr=0.1, weight_decay=1.0)
        for _ in range(300):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(p.data[0]) < 1.0


class TestSchedulers:
    def _opt(self):
        return SGD([Tensor(np.ones(1), requires_grad=True)], lr=1.0)

    def test_constant(self):
        opt = self._opt()
        sched = ConstantLR(opt)
        for _ in range(5):
            assert sched.step() == 1.0

    def test_step_decay(self):
        opt = self._opt()
        sched = StepDecayLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        opt = self._opt()
        sched = CosineDecayLR(opt, total_epochs=10, min_lr=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        np.testing.assert_allclose(lrs[-1], 0.0, atol=1e-12)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_clamps_past_horizon(self):
        opt = self._opt()
        sched = CosineDecayLR(opt, total_epochs=3, min_lr=0.1)
        for _ in range(5):
            lr = sched.step()
        np.testing.assert_allclose(lr, 0.1)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            StepDecayLR(self._opt(), step_size=0)
        with pytest.raises(ConfigurationError):
            StepDecayLR(self._opt(), step_size=1, gamma=0.0)
        with pytest.raises(ConfigurationError):
            CosineDecayLR(self._opt(), total_epochs=0)
        with pytest.raises(ConfigurationError):
            CosineDecayLR(self._opt(), total_epochs=5, min_lr=-0.1)
