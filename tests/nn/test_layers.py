"""Tests for layer modules and the Module system."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ShapeError
from repro.nn import layers
from repro.nn.gradcheck import check_gradients
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor


class TestModuleSystem:
    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros(3))
        assert p.requires_grad

    def test_named_parameters_recursive(self):
        model = layers.Sequential(
            layers.Conv2d(1, 2, 3, rng=0),
            layers.BatchNorm2d(2),
            layers.Linear(4, 5, rng=0),
        )
        names = dict(model.named_parameters())
        assert any("weight" in n for n in names)
        assert any("gamma" in n for n in names)
        assert len(model.parameters()) == 5  # conv w, bn gamma/beta, linear w/b

    def test_train_eval_propagates(self):
        model = layers.Sequential(layers.BatchNorm2d(2), layers.LeakyReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        lin = layers.Linear(3, 2, rng=0)
        out = lin(Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None

    def test_state_dict_roundtrip(self):
        a = layers.Sequential(layers.Conv2d(1, 2, 3, rng=0), layers.BatchNorm2d(2))
        b = layers.Sequential(layers.Conv2d(1, 2, 3, rng=99), layers.BatchNorm2d(2))
        a[1].running_mean[...] = 5.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b[0].weight.data, a[0].weight.data)
        np.testing.assert_allclose(b[1].running_mean, 5.0)

    def test_state_dict_unknown_key_raises(self):
        lin = layers.Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(ConfigurationError):
            lin.load_state_dict(state)

    def test_state_dict_missing_key_raises(self):
        lin = layers.Linear(2, 2, rng=0)
        state = lin.state_dict()
        del state["weight"]
        with pytest.raises(ConfigurationError):
            lin.load_state_dict(state)

    def test_state_dict_shape_mismatch_raises(self):
        lin = layers.Linear(2, 2, rng=0)
        state = lin.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ConfigurationError):
            lin.load_state_dict(state)

    def test_module_list_type_checked(self):
        with pytest.raises(ConfigurationError):
            ModuleList([layers.LeakyReLU(), "not a module"])

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(Tensor(np.zeros(1)))

    def test_num_parameters(self):
        lin = layers.Linear(3, 4, rng=0)
        assert lin.num_parameters() == 3 * 4 + 4


class TestConv2dLayer:
    def test_forward_shape(self, rng):
        conv = layers.Conv2d(3, 8, 3, stride=1, padding=1, rng=0)
        out = conv(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 8, 16, 16)

    def test_output_spatial(self):
        conv = layers.Conv2d(1, 1, 3, stride=2, padding=1, rng=0)
        assert conv.output_spatial(32, 32) == (16, 16)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            layers.Conv2d(0, 4, 3)
        with pytest.raises(ConfigurationError):
            layers.Conv2d(1, 4, 3, padding=-1)

    def test_no_bias_by_default(self):
        assert layers.Conv2d(1, 1, 3, rng=0).bias is None

    def test_repr(self):
        assert "Conv2d(3, 8" in repr(layers.Conv2d(3, 8, 3, rng=0))


class TestLinearLayer:
    def test_forward(self, rng):
        lin = layers.Linear(5, 3, rng=0)
        out = lin(Tensor(rng.normal(size=(2, 5))))
        assert out.shape == (2, 3)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            layers.Linear(0, 3)


class TestBatchNorm2d:
    def test_train_normalizes_batch(self, rng):
        bn = layers.BatchNorm2d(4)
        x = Tensor(rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5)))
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_eval_uses_running_stats(self, rng):
        bn = layers.BatchNorm2d(2)
        x = Tensor(rng.normal(loc=1.0, size=(16, 2, 4, 4)))
        for _ in range(50):
            bn(x)
        bn.eval()
        out = bn(x).numpy()
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=0.05)

    def test_running_stats_updated(self, rng):
        bn = layers.BatchNorm2d(2)
        x = Tensor(rng.normal(loc=5.0, size=(8, 2, 3, 3)))
        bn(x)
        assert (bn.running_mean > 0).all()

    def test_gradcheck(self, rng):
        bn = layers.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        check_gradients(lambda: (bn(x) ** 2).sum(), [x, bn.gamma, bn.beta], rtol=1e-3, atol=1e-5)

    def test_shape_validated(self, rng):
        bn = layers.BatchNorm2d(3)
        with pytest.raises(ShapeError):
            bn(Tensor(rng.normal(size=(2, 4, 3, 3))))

    def test_invalid_momentum(self):
        with pytest.raises(ConfigurationError):
            layers.BatchNorm2d(2, momentum=0.0)


class TestContainers:
    def test_sequential_chains(self, rng):
        model = layers.Sequential(
            layers.Conv2d(1, 2, 3, padding=1, rng=0),
            layers.LeakyReLU(),
            layers.MaxPool2d(2),
            layers.Flatten(),
        )
        out = model(Tensor(rng.normal(size=(2, 1, 8, 8))))
        assert out.shape == (2, 2 * 4 * 4)

    def test_sequential_indexing_len_iter(self):
        model = layers.Sequential(layers.LeakyReLU(), layers.ReLU())
        assert len(model) == 2
        assert isinstance(model[0], layers.LeakyReLU)
        assert [type(m).__name__ for m in model] == ["LeakyReLU", "ReLU"]

    def test_sequential_append(self):
        model = layers.Sequential()
        model.append(layers.ReLU())
        assert len(model) == 1

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert layers.Identity()(x) is x

    def test_pooling_invalid_kernel(self):
        with pytest.raises(ConfigurationError):
            layers.MaxPool2d(0)
        with pytest.raises(ConfigurationError):
            layers.AvgPool2d(-1)

    def test_global_avg_pool_layer(self, rng):
        out = layers.GlobalAvgPool2d()(Tensor(rng.normal(size=(2, 3, 4, 4))))
        assert out.shape == (2, 3)
