"""Tests for conv/pool/activation/loss ops, including scipy cross-checks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import signal

from repro.errors import ShapeError
from repro.nn import functional as F
from repro.nn.gradcheck import check_gradients
from repro.nn.tensor import Tensor


def make(shape, rng, requires_grad=True):
    return Tensor(rng.normal(size=shape), requires_grad=requires_grad)


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 3, 2, 1) == 16
        assert F.conv_output_size(5, 3, 1, 0) == 3

    def test_invalid_raises(self):
        with pytest.raises(ShapeError):
            F.conv_output_size(2, 5, 1, 0)


class TestConv2dForward:
    def test_matches_scipy_correlate(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=0).numpy()
        expected = np.zeros_like(out)
        for n in range(2):
            for f in range(4):
                acc = np.zeros((6, 6))
                for c in range(3):
                    acc += signal.correlate2d(x[n, c], w[f, c], mode="valid")
                expected[n, f] = acc
        np.testing.assert_allclose(out, expected, rtol=1e-10)

    def test_padding_matches_scipy(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), stride=1, padding=1).numpy()
        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for f in range(3):
            expected = sum(
                signal.correlate2d(xp[0, c], w[f, c], mode="valid") for c in range(2)
            )
            np.testing.assert_allclose(out[0, f], expected, rtol=1e-10)

    def test_stride_subsamples(self, rng):
        x = rng.normal(size=(1, 1, 8, 8))
        w = rng.normal(size=(1, 1, 3, 3))
        full = F.conv2d(Tensor(x), Tensor(w), stride=1).numpy()
        strided = F.conv2d(Tensor(x), Tensor(w), stride=2).numpy()
        np.testing.assert_allclose(strided[0, 0], full[0, 0][::2, ::2])

    def test_bias_added_per_filter(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        w = np.zeros((2, 1, 3, 3))
        b = np.array([1.5, -2.0])
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b)).numpy()
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(make((1, 3, 5, 5), rng), make((2, 4, 3, 3), rng))

    def test_bias_shape_checked(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(make((1, 1, 5, 5), rng), make((2, 1, 3, 3), rng), make((3,), rng))

    def test_non_4d_raises(self, rng):
        with pytest.raises(ShapeError):
            F.conv2d(make((3, 5, 5), rng), make((2, 3, 3, 3), rng))


class TestConv2dGradients:
    def test_gradcheck_all_inputs(self, rng):
        x = make((2, 2, 5, 5), rng)
        w = make((3, 2, 3, 3), rng)
        b = make((3,), rng)
        check_gradients(lambda: (F.conv2d(x, w, b, stride=1, padding=1) ** 2).sum(), [x, w, b])

    def test_gradcheck_strided(self, rng):
        x = make((1, 2, 6, 6), rng)
        w = make((2, 2, 3, 3), rng)
        check_gradients(lambda: (F.conv2d(x, w, stride=2) ** 2).sum(), [x, w])


class TestIm2colFastPaths:
    """The 1x1 shortcuts in _im2col/_col2im must stay exact adjoints."""

    def test_1x1_im2col_is_a_view(self, rng):
        x = rng.normal(size=(2, 3, 5, 5))
        cols, oh, ow = F._im2col(x, 1, 1, 1, 0)
        assert (oh, ow) == (5, 5)
        assert np.shares_memory(cols, x)  # no-copy fast path
        np.testing.assert_array_equal(cols, x.reshape(2, 3, 25))

    def test_1x1_conv_matches_channel_matmul(self, rng):
        x = rng.normal(size=(2, 4, 6, 6))
        w = rng.normal(size=(5, 4, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w)).numpy()
        want = np.einsum("fc,nchw->nfhw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out, want, rtol=1e-12)

    def test_1x1_strided_col2im_matches_generic(self, rng):
        """The vectorized 1x1 scatter equals the kh*kw accumulation loop."""
        n, c, h, w, s = 2, 3, 7, 7, 2
        oh = ow = (h - 1) // s + 1
        dcols = rng.normal(size=(n, c, oh * ow))
        got = F._col2im(dcols, (n, c, h, w), 1, 1, s, 0, oh, ow)
        want = np.zeros((n, c, h, w))
        d4 = dcols.reshape(n, c, oh, ow)
        for i in range(oh):
            for j in range(ow):
                want[:, :, i * s, j * s] += d4[:, :, i, j]
        np.testing.assert_array_equal(got, want)

    def test_1x1_gradcheck(self, rng):
        x = make((2, 3, 4, 4), rng)
        w = make((2, 3, 1, 1), rng)
        check_gradients(lambda: (F.conv2d(x, w) ** 2).sum(), [x, w])

    def test_1x1_strided_gradcheck(self, rng):
        x = make((1, 2, 5, 5), rng)
        w = make((3, 2, 1, 1), rng)
        check_gradients(lambda: (F.conv2d(x, w, stride=2) ** 2).sum(), [x, w])


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.max_pool2d(x, 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_gradcheck(self, rng):
        # Use distinct values to avoid argmax ties (non-differentiable points).
        x = Tensor(rng.permutation(32).reshape(1, 2, 4, 4).astype(float), requires_grad=True)
        check_gradients(lambda: (F.max_pool2d(x, 2) ** 2).sum(), [x])

    def test_max_pool_strided(self, rng):
        x = make((1, 1, 5, 5), rng, requires_grad=False)
        out = F.max_pool2d(x, 3, stride=2)
        assert out.shape == (1, 1, 2, 2)

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = F.avg_pool2d(x, 2).numpy()
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self, rng):
        x = make((1, 2, 4, 4), rng)
        check_gradients(lambda: (F.avg_pool2d(x, 2) ** 2).sum(), [x])

    def test_global_avg_pool(self, rng):
        x = make((2, 3, 4, 4), rng)
        out = F.global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.numpy(), x.data.mean(axis=(2, 3)))
        check_gradients(lambda: (F.global_avg_pool2d(x) ** 2).sum(), [x])


class TestPadAndFlatten:
    def test_pad2d_shape_and_grad(self, rng):
        x = make((1, 2, 3, 3), rng)
        out = F.pad2d(x, 2)
        assert out.shape == (1, 2, 7, 7)
        check_gradients(lambda: (F.pad2d(x, 2) ** 2).sum(), [x])

    def test_pad2d_zero_is_identity(self, rng):
        x = make((1, 1, 3, 3), rng)
        assert F.pad2d(x, 0) is x

    def test_flatten(self, rng):
        x = make((2, 3, 4, 5), rng)
        assert F.flatten(x).shape == (2, 60)
        check_gradients(lambda: (F.flatten(x) ** 2).sum(), [x])


class TestActivations:
    def test_relu_values(self):
        x = Tensor(np.array([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(F.relu(x).numpy(), [0.0, 0.0, 2.0])

    def test_relu_gradcheck(self, rng):
        x = Tensor(rng.normal(size=8) + np.where(rng.normal(size=8) > 0, 0.5, -0.5), requires_grad=True)
        check_gradients(lambda: (F.relu(x) ** 2).sum(), [x])

    def test_leaky_relu_values(self):
        x = Tensor(np.array([-2.0, 3.0]))
        np.testing.assert_allclose(F.leaky_relu(x, 0.1).numpy(), [-0.2, 3.0])

    def test_leaky_relu_gradcheck(self, rng):
        x = Tensor(np.array([-2.0, -0.7, 0.3, 1.9]), requires_grad=True)
        check_gradients(lambda: (F.leaky_relu(x, 0.05) ** 2).sum(), [x])


class TestSoftmaxAndLosses:
    def test_softmax_rows_sum_to_one(self, rng):
        x = make((4, 7), rng, requires_grad=False)
        np.testing.assert_allclose(F.softmax(x).numpy().sum(axis=1), np.ones(4))

    def test_softmax_stable_for_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0, 0.0]]))
        out = F.softmax(x).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], atol=1e-9)

    def test_softmax_gradcheck(self, rng):
        x = make((3, 4), rng)
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda: (F.softmax(x) * w).sum(), [x])

    def test_log_softmax_gradcheck(self, rng):
        x = make((3, 4), rng)
        w = Tensor(rng.normal(size=(3, 4)))
        check_gradients(lambda: (F.log_softmax(x) * w).sum(), [x])

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(5, 3))
        labels = np.array([0, 2, 1, 1, 0])
        loss = F.cross_entropy(Tensor(logits), labels).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        np.testing.assert_allclose(loss, -logp[np.arange(5), labels].mean())

    def test_cross_entropy_gradcheck(self, rng):
        logits = make((4, 3), rng)
        labels = np.array([0, 1, 2, 1])
        check_gradients(lambda: F.cross_entropy(logits, labels), [logits])

    def test_cross_entropy_uniform_bound(self):
        # Loss at uniform logits equals log(C).
        logits = Tensor(np.zeros((2, 10)))
        np.testing.assert_allclose(F.cross_entropy(logits, np.array([3, 7])).item(), np.log(10))

    def test_cross_entropy_shape_errors(self, rng):
        with pytest.raises(ShapeError):
            F.cross_entropy(make((2, 3, 4), rng), np.array([0, 1]))
        with pytest.raises(ShapeError):
            F.cross_entropy(make((2, 3), rng), np.array([0, 1, 2]))

    def test_linear_matches_numpy(self, rng):
        x, w, b = rng.normal(size=(4, 5)), rng.normal(size=(3, 5)), rng.normal(size=3)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).numpy()
        np.testing.assert_allclose(out, x @ w.T + b, rtol=1e-12)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    kernel=st.sampled_from([1, 3]),
    padding=st.sampled_from([0, 1]),
    stride=st.sampled_from([1, 2]),
)
def test_property_conv_shape_formula(seed, kernel, padding, stride):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(size=(1, 2, 8, 8)))
    w = Tensor(rng.normal(size=(3, 2, kernel, kernel)))
    out = F.conv2d(x, w, stride=stride, padding=padding)
    expected = (8 + 2 * padding - kernel) // stride + 1
    assert out.shape == (1, 3, expected, expected)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_conv_linearity_in_input(seed):
    rng = np.random.default_rng(seed)
    x1, x2 = rng.normal(size=(1, 1, 6, 6)), rng.normal(size=(1, 1, 6, 6))
    w = Tensor(rng.normal(size=(2, 1, 3, 3)))
    lhs = F.conv2d(Tensor(x1 + 2.0 * x2), w).numpy()
    rhs = F.conv2d(Tensor(x1), w).numpy() + 2.0 * F.conv2d(Tensor(x2), w).numpy()
    np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)
