"""Tests for table formatting helpers."""

from __future__ import annotations

from repro.analysis.tables import format_table, format_throughput_value


class TestThroughputFormat:
    def test_paper_style_scientific(self):
        assert format_throughput_value(2200) == "2.2e3"
        assert format_throughput_value(320) == "3.2e2"
        assert format_throughput_value(160000) == "1.6e5"

    def test_small_values_plain(self):
        assert format_throughput_value(39.2) == "39.2"
        assert format_throughput_value(1.3) == "1.3"

    def test_zero_and_negative(self):
        assert format_throughput_value(0) == "0"
        assert format_throughput_value(-5) == "0"


class TestFormatTable:
    def test_alignment_and_title(self):
        out = format_table(["A", "Blong"], [[1, 2], [333, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_empty_rows(self):
        out = format_table(["A"], [])
        assert "A" in out

    def test_column_width_from_cells(self):
        out = format_table(["X"], [["longvalue"]])
        header_line = out.splitlines()[0]
        assert len(header_line) >= len("longvalue")
