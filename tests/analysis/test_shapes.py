"""Tests for the reusable paper-shape checks."""

from __future__ import annotations

import pytest

from repro.analysis.shapes import (
    check_energy_ordering,
    check_flightnn_interpolation,
    check_storage_ratios,
    check_throughput_ordering,
    run_all_checks,
)
from repro.experiments.common import ModelResult


def make_row(key, accuracy=90.0, storage=0.01, throughput=1e4, energy=1.0, k=0.0):
    return ModelResult(
        network_id=1, scheme_key=key, scheme_name=key, accuracy=accuracy,
        top5=99.0, accuracy_final=accuracy, storage_mb=storage,
        mean_filter_k=k, throughput=throughput, batch_size=4,
        fpga_lut=1, fpga_ff=1, fpga_dsp=1, fpga_bram=1,
        fpga_bound_by=("bram",), energy_uj=energy, train_epochs=1,
    )


def consistent_rows():
    """A row set satisfying every paper claim."""
    return [
        make_row("Full", storage=0.08, throughput=1e3, energy=100.0, k=0.0),
        make_row("L-2", storage=0.02, throughput=8e3, energy=2.0, k=2.0),
        make_row("L-1", storage=0.01, throughput=16e3, energy=1.0, k=1.0),
        make_row("FP", storage=0.01, throughput=9e3, energy=3.0, k=0.0),
        make_row("FL_a", storage=0.0105, throughput=15e3, energy=1.05, k=1.05),
        make_row("FL_b", storage=0.016, throughput=10e3, energy=1.6, k=1.6),
    ]


class TestConsistentRows:
    def test_no_violations(self):
        assert run_all_checks(consistent_rows()) == []


class TestStorage:
    def test_detects_wrong_l2_ratio(self):
        rows = consistent_rows()
        rows[1] = make_row("L-2", storage=0.03, throughput=8e3, energy=2.0, k=2.0)
        violations = check_storage_ratios(rows)
        assert any("L-2/L-1" in v for v in violations)

    def test_detects_fl_outside_band(self):
        rows = consistent_rows()
        rows[4] = make_row("FL_a", storage=0.05, throughput=15e3, energy=1.05, k=1.05)
        assert any("FL_a" in v for v in check_storage_ratios(rows))

    def test_partial_row_sets_ok(self):
        assert check_storage_ratios([make_row("L-1")]) == []


class TestThroughput:
    def test_detects_inverted_order(self):
        rows = consistent_rows()
        rows[2] = make_row("L-1", storage=0.01, throughput=5e3, energy=1.0, k=1.0)
        assert check_throughput_ordering(rows)

    def test_detects_fl_slower_than_fp(self):
        rows = consistent_rows()
        rows[4] = make_row("FL_a", storage=0.0105, throughput=8e3, energy=1.05, k=1.05)
        assert any("FL_a" in v for v in check_throughput_ordering(rows))


class TestEnergy:
    def test_detects_fp_cheaper_than_l2(self):
        rows = consistent_rows()
        rows[3] = make_row("FP", storage=0.01, throughput=9e3, energy=1.5, k=0.0)
        assert any("FP" in v for v in check_energy_ordering(rows))

    def test_detects_full_not_dominant(self):
        rows = consistent_rows()
        rows[0] = make_row("Full", storage=0.08, throughput=1e3, energy=4.0, k=0.0)
        assert any("Full" in v for v in check_energy_ordering(rows))


class TestInterpolation:
    def test_detects_bad_lightnn_k(self):
        rows = consistent_rows()
        rows[2] = make_row("L-1", storage=0.01, throughput=16e3, energy=1.0, k=1.5)
        assert any("L-1" in v for v in check_flightnn_interpolation(rows))

    def test_detects_lambda_ordering_violation(self):
        rows = consistent_rows()
        rows[4] = make_row("FL_a", storage=0.0105, throughput=15e3, energy=1.05, k=1.9)
        assert any("FL_a" in v for v in check_flightnn_interpolation(rows))
