"""Tests for Pareto-front utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pareto import (
    dominates,
    front_dominates,
    front_value_at,
    pareto_front,
    pareto_front_indices,
)
from repro.errors import ConfigurationError


class TestDominates:
    def test_strictly_better_both(self):
        assert dominates((1.0, 0.9), (2.0, 0.8))

    def test_equal_does_not_dominate(self):
        assert not dominates((1.0, 0.9), (1.0, 0.9))

    def test_better_on_one_axis(self):
        assert dominates((1.0, 0.9), (1.0, 0.8))
        assert dominates((0.5, 0.9), (1.0, 0.9))

    def test_tradeoff_no_domination(self):
        assert not dominates((1.0, 0.9), (2.0, 0.95))
        assert not dominates((2.0, 0.95), (1.0, 0.9))


class TestParetoFront:
    def test_extracts_non_dominated(self):
        points = [(1.0, 0.8), (2.0, 0.9), (1.5, 0.7), (3.0, 0.85)]
        front = pareto_front(points)
        assert front == [(1.0, 0.8), (2.0, 0.9)]

    def test_sorted_by_cost(self):
        points = [(3.0, 0.99), (1.0, 0.5), (2.0, 0.9)]
        front = pareto_front(points)
        assert [c for c, _ in front] == sorted(c for c, _ in front)

    def test_all_on_front(self):
        points = [(1.0, 0.5), (2.0, 0.7), (3.0, 0.9)]
        assert pareto_front(points) == points

    def test_single_point(self):
        assert pareto_front([(1.0, 0.5)]) == [(1.0, 0.5)]

    def test_duplicates_kept(self):
        points = [(1.0, 0.5), (1.0, 0.5)]
        assert len(pareto_front(points)) == 2

    def test_shape_validated(self):
        with pytest.raises(ConfigurationError):
            pareto_front_indices(np.zeros((3, 3)))


class TestFrontValueAt:
    def test_best_feasible(self):
        front = [(1.0, 0.5), (2.0, 0.8)]
        assert front_value_at(front, 1.5) == 0.5
        assert front_value_at(front, 2.0) == 0.8

    def test_infeasible_is_minus_inf(self):
        assert front_value_at([(1.0, 0.5)], 0.5) == float("-inf")


class TestFrontDominates:
    def test_upper_bound(self):
        upper = [(1.0, 0.6), (2.0, 0.9)]
        lower = [(1.0, 0.5), (2.0, 0.8)]
        assert front_dominates(upper, lower)
        assert not front_dominates(lower, upper)

    def test_equal_fronts(self):
        f = [(1.0, 0.5), (2.0, 0.8)]
        assert front_dominates(f, f)
        assert not front_dominates(f, f, strict_somewhere=True)

    def test_strict_somewhere(self):
        upper = [(1.0, 0.5), (2.0, 0.9)]
        lower = [(1.0, 0.5), (2.0, 0.8)]
        assert front_dominates(upper, lower, strict_somewhere=True)

    def test_crossing_fronts_do_not_dominate(self):
        a = [(1.0, 0.9), (2.0, 0.91)]
        b = [(1.0, 0.5), (2.0, 0.95)]
        assert not front_dominates(a, b)  # b wins at cost 2
        assert not front_dominates(b, a)  # a wins at cost 1


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16), n=st.integers(1, 30))
def test_property_front_points_mutually_nondominated(seed, n):
    rng = np.random.default_rng(seed)
    points = [(float(c), float(v)) for c, v in rng.random((n, 2))]
    front = pareto_front(points)
    for i, a in enumerate(front):
        for j, b in enumerate(front):
            if i != j:
                assert not dominates(a, b)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_property_front_dominates_its_source(seed):
    rng = np.random.default_rng(seed)
    points = [(float(c), float(v)) for c, v in rng.random((12, 2))]
    assert front_dominates(pareto_front(points), points)
